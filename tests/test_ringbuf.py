"""Unit tests: repro.comm.ringbuf (plain + simulated circular buffers)."""

from __future__ import annotations

import pytest

from repro.comm import RingBuffer, SimRingBuffer
from repro.device import Engine
from repro.errors import BufferClosed, CommError


class TestRingBuffer:
    def test_fifo_order(self):
        rb = RingBuffer(4)
        for x in range(4):
            rb.push(x)
        assert [rb.pop() for _ in range(4)] == [0, 1, 2, 3]

    def test_wraparound(self):
        rb = RingBuffer(3)
        for x in (1, 2, 3):
            rb.push(x)
        assert rb.pop() == 1
        rb.push(4)
        assert [rb.pop(), rb.pop(), rb.pop()] == [2, 3, 4]

    def test_full_and_empty_flags(self):
        rb = RingBuffer(2)
        assert rb.empty and not rb.full
        rb.push(1)
        rb.push(2)
        assert rb.full and not rb.empty

    def test_push_full_raises(self):
        rb = RingBuffer(1)
        rb.push(0)
        with pytest.raises(CommError):
            rb.push(1)

    def test_pop_empty_raises(self):
        with pytest.raises(CommError):
            RingBuffer(1).pop()

    def test_stats(self):
        rb = RingBuffer(3)
        rb.push(1)
        rb.push(2)
        rb.pop()
        rb.push(3)
        rb.push(4)
        assert rb.pushed == 4
        assert rb.popped == 1
        assert rb.peak_occupancy == 3

    def test_bad_capacity(self):
        with pytest.raises(CommError):
            RingBuffer(0)


class TestSimRingBuffer:
    def test_put_get_through_time(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 2)
        got = []

        def producer():
            for x in range(5):
                yield eng.timeout(1.0)
                yield ring.put(x)

        def consumer():
            for _ in range(5):
                value = yield ring.get()
                got.append((eng.now, value))

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert [v for _, v in got] == [0, 1, 2, 3, 4]

    def test_producer_blocks_when_full(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 1)
        done = []

        def producer():
            yield ring.put("a")
            yield ring.put("b")  # must wait for the consumer
            done.append(eng.now)

        def consumer():
            yield eng.timeout(5.0)
            yield ring.get()
            yield ring.get()

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert done == [5.0]
        assert ring.stats.producer_blocked_s == pytest.approx(5.0)

    def test_consumer_blocks_when_empty(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 4)
        got = []

        def consumer():
            value = yield ring.get()
            got.append((eng.now, value))

        def producer():
            yield eng.timeout(3.0)
            yield ring.put("x")

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert got == [(3.0, "x")]
        assert ring.stats.consumer_blocked_s == pytest.approx(3.0)

    def test_capacity_one_rendezvous(self):
        """With a single slot, producer and consumer strictly alternate."""
        eng = Engine()
        ring = SimRingBuffer(eng, 1)
        events = []

        def producer():
            for x in range(3):
                yield ring.put(x)
                events.append(("put", x, eng.now))

        def consumer():
            for _ in range(3):
                yield eng.timeout(2.0)
                value = yield ring.get()
                events.append(("get", value, eng.now))

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        puts = [e for e in events if e[0] == "put"]
        # puts 1 and 2 had to wait for gets at t=2 and t=4
        assert puts[1][2] == pytest.approx(2.0)
        assert puts[2][2] == pytest.approx(4.0)

    def test_peak_occupancy_tracked(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 8)

        def producer():
            for x in range(5):
                yield ring.put(x)

        def consumer():
            yield eng.timeout(1.0)
            for _ in range(5):
                yield ring.get()

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert ring.stats.peak_occupancy == 5

    def test_close_fails_waiting_getter(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 2, "r")
        caught = []

        def consumer():
            try:
                yield ring.get()
            except BufferClosed:
                caught.append(eng.now)

        def closer():
            yield eng.timeout(1.0)
            ring.close()

        eng.process(consumer())
        eng.process(closer())
        eng.run()
        assert caught == [1.0]

    def test_put_after_close_rejected(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 2)
        ring.close()
        with pytest.raises(BufferClosed):
            ring.put(1)

    def test_close_drains_remaining_items_first(self):
        eng = Engine()
        ring = SimRingBuffer(eng, 2)
        got = []

        def producer():
            yield ring.put("x")
            ring.close()

        def consumer():
            yield eng.timeout(1.0)
            got.append((yield ring.get()))
            try:
                yield ring.get()
            except BufferClosed:
                got.append("closed")

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert got == ["x", "closed"]
