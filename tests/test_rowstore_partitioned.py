"""Unit tests: repro.sw.rowstore and align_local_partitioned."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT
from repro.sw import (
    BudgetedRowStore,
    align_local,
    align_local_partitioned,
    find_crossings,
    stage1_score,
    stage2_start,
    sw_score_naive,
)

from helpers import mutated_copy, random_codes


class TestBudgetedRowStore:
    def test_memory_only_when_budget_large(self, rng, tmp_path):
        with BudgetedRowStore(8, max_memory_bytes=10**9,
                              spill_dir=str(tmp_path)) as store:
            a = random_codes(rng, 64)
            stage1_score(a, a, DNA_DEFAULT, row_store=store)
            assert store.stats.rows_spilled == 0
            assert store.stats.rows_in_memory == 8

    def test_spills_beyond_budget(self, rng, tmp_path):
        with BudgetedRowStore(8, max_memory_bytes=1024,
                              spill_dir=str(tmp_path)) as store:
            a = random_codes(rng, 128)
            stage1_score(a, a, DNA_DEFAULT, row_store=store)
            assert store.stats.rows_spilled > 0
            assert store.stats.bytes_in_memory <= 1024
            assert len(os.listdir(tmp_path)) == store.stats.rows_spilled

    def test_load_identical_from_both_tiers(self, rng, tmp_path):
        """Values must be identical whether a row stayed in RAM or spilled."""
        a = random_codes(rng, 96)
        with BudgetedRowStore(8, max_memory_bytes=10**9) as ram:
            s1 = stage1_score(a, a, DNA_DEFAULT, row_store=ram)
            with BudgetedRowStore(8, max_memory_bytes=0,
                                  spill_dir=str(tmp_path)) as disk:
                stage1_score(a, a, DNA_DEFAULT, row_store=disk)
                for r in ram.row_indices():
                    h1, f1 = ram.load(r)
                    h2, f2 = disk.load(r)
                    assert np.array_equal(h1, h2)
                    assert np.array_equal(f1, f2)
                assert disk.stats.spill_reads == len(ram.row_indices())
        del s1

    def test_crossings_work_through_spill(self, rng, tmp_path):
        a = random_codes(rng, 150)
        b = mutated_copy(rng, a, 0.05)
        with BudgetedRowStore(32, max_memory_bytes=0,
                              spill_dir=str(tmp_path)) as store:
            s1 = stage1_score(a, b, DNA_DEFAULT, row_store=store)
            si, sj = stage2_start(a, b, DNA_DEFAULT, s1.score, s1.end_i, s1.end_j)
            cps = find_crossings(a, b, DNA_DEFAULT, s1, si, sj)
            assert cps  # crossings found via the disk tier

    def test_close_removes_spill_files(self, rng, tmp_path):
        store = BudgetedRowStore(8, max_memory_bytes=0, spill_dir=str(tmp_path))
        a = random_codes(rng, 64)
        stage1_score(a, a, DNA_DEFAULT, row_store=store)
        assert os.listdir(tmp_path)
        store.close()
        assert not os.listdir(tmp_path)
        with pytest.raises(ConfigError):
            store.store(0, np.zeros(1, np.int32), np.zeros(1, np.int32))

    def test_missing_row_keyerror(self):
        with BudgetedRowStore(4) as store:
            with pytest.raises(KeyError):
                store.load(99)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BudgetedRowStore(0)
        with pytest.raises(ConfigError):
            BudgetedRowStore(4, max_memory_bytes=-1)


class TestPartitionedAlignment:
    def test_equals_oracle_on_homologs(self, rng):
        for snp in (0.02, 0.1, 0.25):
            a = random_codes(rng, 250)
            b = mutated_copy(rng, a, snp)
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            aln = align_local_partitioned(a, b, DNA_DEFAULT,
                                          special_interval=32, base_cells=64)
            assert aln.score == want
            aln.validate(a, b, DNA_DEFAULT)

    def test_equals_monolithic_pipeline(self, rng):
        a = random_codes(rng, 200)
        b = mutated_copy(rng, a, 0.05)
        mono = align_local(a, b, DNA_DEFAULT)
        part = align_local_partitioned(a, b, DNA_DEFAULT, special_interval=32)
        assert part.score == mono.score
        assert (part.start_i, part.end_i) == (mono.start_i, mono.end_i)

    def test_random_unrelated_sequences(self, rng):
        for _ in range(10):
            a = random_codes(rng, int(rng.integers(20, 120)))
            b = random_codes(rng, int(rng.integers(20, 120)))
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            aln = align_local_partitioned(a, b, DNA_DEFAULT,
                                          special_interval=16, base_cells=32)
            assert aln.score == want
            aln.validate(a, b, DNA_DEFAULT)

    def test_empty_result(self):
        from repro.seq import encode
        aln = align_local_partitioned(encode("AAAA"), encode("TTTT"), DNA_DEFAULT,
                                      special_interval=2)
        assert aln.score == 0 and aln.ops == ""

    def test_requires_interval(self, rng):
        a = random_codes(rng, 10)
        with pytest.raises(ConfigError):
            align_local_partitioned(a, a, DNA_DEFAULT, special_interval=0)

    def test_with_indels(self, rng):
        a = random_codes(rng, 300)
        b = mutated_copy(rng, a, 0.05)
        b = np.concatenate([b[:100], b[110:]])  # 10-base deletion
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        aln = align_local_partitioned(a, b, DNA_DEFAULT, special_interval=64)
        assert aln.score == want
        aln.validate(a, b, DNA_DEFAULT)
