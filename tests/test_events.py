"""Tests: the structured event journal (repro.obs.events, INTERNALS.md §13)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import EVENT_KINDS, EventJournal, read_events, validate_event
from repro.obs.events import EVENT_SCHEMA


class TestEmission:
    def test_emit_returns_validated_record(self):
        journal = EventJournal(run_id="r1")
        rec = journal.emit("run_start", backend="process", rows=100, cols=200)
        validate_event(rec)
        assert rec["event"] == "run_start"
        assert rec["run_id"] == "r1"
        assert rec["backend"] == "process"
        assert rec["rows"] == 100
        assert rec["seq"] == 0

    def test_unknown_kind_raises(self):
        journal = EventJournal()
        with pytest.raises(ObsError, match="unknown event kind"):
            journal.emit("worker_sneeze")
        assert journal.count() == 0

    def test_correlation_ids_are_ints_and_optional(self):
        journal = EventJournal()
        rec = journal.emit("worker_spawn", worker=1, attempt=0, pid=4321)
        assert rec["worker"] == 1 and rec["attempt"] == 0
        run_scoped = journal.emit("run_end", status="ok")
        assert "worker" not in run_scoped and "attempt" not in run_scoped

    def test_none_fields_are_dropped(self):
        rec = EventJournal().emit("run_end", status="ok", detail=None)
        assert "detail" not in rec

    def test_non_serialisable_field_fails_fast(self):
        journal = EventJournal()
        with pytest.raises(TypeError):
            journal.emit("run_start", board=object())
        # The failed emit must not have been journaled.
        assert journal.count() == 0

    def test_seq_is_dense_and_ordered(self):
        journal = EventJournal()
        for _ in range(5):
            journal.emit("checkpoint", attempt=0)
        assert [rec["seq"] for rec in journal.recent()] == list(range(5))

    def test_default_run_id_is_fresh_uuid_hex(self):
        a, b = EventJournal(), EventJournal()
        assert a.run_id != b.run_id
        assert len(a.run_id) == 32


class TestTailAndCounts:
    def test_recent_is_bounded_ring(self):
        journal = EventJournal(recent=3)
        for i in range(10):
            journal.emit("checkpoint", attempt=i)
        tail = journal.recent()
        assert [rec["attempt"] for rec in tail] == [7, 8, 9]
        assert journal.count() == 10          # total survives the ring
        assert journal.count("checkpoint") == 10  # and so do kind counts

    def test_kind_counts_survive_ring_eviction(self):
        # Regression: count(kind) used to scan the bounded ring, so any
        # journal older than `recent` events silently under-reported —
        # count("worker_spawn") could return 0 for a run that spawned
        # dozens of workers.
        journal = EventJournal(recent=4)
        for i in range(25):
            journal.emit("worker_spawn", worker=i)
        for i in range(7):
            journal.emit("checkpoint", attempt=i)
        assert journal.count("worker_spawn") == 25
        assert journal.count("checkpoint") == 7
        assert journal.count("run_end") == 0
        assert journal.count() == 32
        assert len(journal.recent()) == 4  # the ring itself stays bounded

    def test_recent_n_takes_newest(self):
        journal = EventJournal()
        journal.emit("run_start")
        journal.emit("run_end", status="ok")
        assert [r["event"] for r in journal.recent(1)] == ["run_end"]

    def test_recent_must_be_positive(self):
        with pytest.raises(ObsError):
            EventJournal(recent=0)


class TestSpillFile:
    def test_spill_roundtrips_through_read_events(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"   # parent dir is created
        with EventJournal(path, run_id="rt") as journal:
            journal.emit("run_start", backend="sim")
            journal.emit("worker_spawn", worker=0, pid=1)
            journal.emit("run_end", status="ok", score=42)
        events = read_events(path)
        assert [rec["event"] for rec in events] == \
            ["run_start", "worker_spawn", "run_end"]
        for rec in events:
            validate_event(rec)
            assert rec["run_id"] == "rt"

    def test_read_events_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as journal:
            journal.emit("run_start")
            journal.emit("run_end", status="ok")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "mgsw.telemetry.event/v1", "event": "run_')
        events = read_events(path)
        assert [rec["event"] for rec in events] == ["run_start", "run_end"]

    def test_read_events_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_append_mode_spans_journal_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path, run_id="first") as journal:
            journal.emit("run_start")
        with EventJournal(path, run_id="second") as journal:
            journal.emit("run_start")
        assert [rec["run_id"] for rec in read_events(path)] == \
            ["first", "second"]

    def test_close_is_idempotent_and_tail_survives(self, tmp_path):
        journal = EventJournal(tmp_path / "events.jsonl")
        journal.emit("run_start")
        journal.close()
        journal.close()
        assert [rec["event"] for rec in journal.recent()] == ["run_start"]

    def test_spilled_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventJournal(path) as journal:
            journal.emit("stall", worker=2, silent_s=5.1)
        (line,) = path.read_text().splitlines()
        rec = json.loads(line)
        assert rec["schema"] == EVENT_SCHEMA
        assert rec["worker"] == 2


class TestValidation:
    def test_taxonomy_is_closed_and_documented(self):
        assert len(EVENT_KINDS) == len(set(EVENT_KINDS)) == 15
        for kind in ("run_start", "worker_death", "checkpoint", "stall",
                     "restart_attempt", "slab_rebalance", "run_end",
                     "job_submit", "job_reject", "job_cache_hit",
                     "job_start", "job_end"):
            assert kind in EVENT_KINDS

    def test_validate_event_rejects_bad_records(self):
        good = EventJournal(run_id="v").emit("run_start")
        for mutation in ({"schema": "other/v9"}, {"event": "nope"},
                         {"run_id": 7}, {"ts_unix": "now"}):
            bad = dict(good)
            bad.update(mutation)
            with pytest.raises(ObsError, match="invalid event"):
                validate_event(bad)
