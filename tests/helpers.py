"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro.seq.scoring import Scoring


def random_codes(rng: np.random.Generator, n: int, *, with_n: bool = False) -> np.ndarray:
    """Random encoded DNA of length *n* (optionally including N)."""
    hi = 5 if with_n else 4
    return rng.integers(0, hi, n).astype(np.uint8)


def random_scoring(rng: np.random.Generator) -> Scoring:
    """A random but valid affine scheme (exercises non-default penalties)."""
    return Scoring(
        match=int(rng.integers(1, 5)),
        mismatch=-int(rng.integers(0, 5)),
        gap_open=int(rng.integers(0, 6)),
        gap_extend=int(rng.integers(1, 4)),
    )


def mutated_copy(rng: np.random.Generator, codes: np.ndarray, snp_rate: float) -> np.ndarray:
    """SNP-mutated copy (guaranteed base changes at mutated sites)."""
    out = codes.copy()
    mask = rng.random(codes.size) < snp_rate
    shift = rng.integers(1, 4, int(mask.sum()), dtype=np.uint8)
    out[mask] = (out[mask] + shift) % 4
    return out
