"""Batched wavefront kernel: bit-identity, amortisers, engine selectors.

The cross-kernel contract is that :func:`repro.sw.batched.sweep_wavefront`
over any job list equals per-job :func:`repro.sw.kernel.sweep_block` calls
bit-for-bit — all four borders, the corner, and the best cell including its
row-major tie-break.  This file pins that contract on hand-built wavefronts
(uniform, ragged, local and global, with row sinks), exercises the
:class:`~repro.sw.batched.KernelWorkspace` and
:class:`~repro.sw.batched.ProfileCache` amortisers, and checks the
``kernel="batched"`` selector end-to-end in every engine and the CLI.
The randomized hypothesis sweep lives in ``test_stress_cross_engine.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import mutated_copy, random_codes, random_scoring
from repro.errors import ConfigError
from repro.multigpu import ChainConfig, align_multi_gpu, align_multi_process
from repro.multigpu.pool import WorkerPool
from repro.seq import DNA_DEFAULT
from repro.sw import (
    KERNELS,
    BlockJob,
    BlockPruner,
    KernelWorkspace,
    ProfileCache,
    cached_profile,
    compute_blocked,
    sweep_block,
    sweep_wavefront,
)
from repro.sw.batched import validate_kernel
from repro.sw.constants import DTYPE
from repro.sw.kernel import build_profile


def random_job(rng, rows, cols, scoring):
    """One block with fully random (but plausible) boundary state."""
    b = random_codes(rng, cols, with_n=True)
    return BlockJob(
        a_codes=random_codes(rng, rows, with_n=True),
        profile=build_profile(b, scoring),
        h_top=rng.integers(-60, 80, cols).astype(DTYPE),
        f_top=rng.integers(-120, 40, cols).astype(DTYPE),
        h_left=rng.integers(-60, 80, rows).astype(DTYPE),
        e_left=rng.integers(-120, 40, rows).astype(DTYPE),
        h_diag=int(rng.integers(-60, 80)),
    )


def scalar_reference(job, scoring, **kw):
    return sweep_block(job.a_codes, job.profile, job.h_top, job.f_top,
                       job.h_left, job.e_left, job.h_diag, scoring, **kw)


def assert_results_equal(got, want):
    np.testing.assert_array_equal(got.h_bottom, want.h_bottom)
    np.testing.assert_array_equal(got.f_bottom, want.f_bottom)
    np.testing.assert_array_equal(got.h_right, want.h_right)
    np.testing.assert_array_equal(got.e_right, want.e_right)
    assert got.corner == want.corner
    assert got.best == want.best


class TestSweepWavefront:
    @pytest.mark.parametrize("local", [True, False])
    def test_uniform_blocks_match_scalar(self, rng, local):
        scoring = random_scoring(rng)
        jobs = [random_job(rng, 17, 23, scoring) for _ in range(5)]
        results = sweep_wavefront(jobs, scoring, local=local)
        for job, got in zip(jobs, results):
            assert_results_equal(got, scalar_reference(job, scoring, local=local))

    @pytest.mark.parametrize("local", [True, False])
    def test_ragged_blocks_match_scalar(self, rng, local):
        scoring = random_scoring(rng)
        shapes = [(19, 31), (19, 7), (4, 31), (1, 1), (11, 13)]
        jobs = [random_job(rng, r, c, scoring) for r, c in shapes]
        results = sweep_wavefront(jobs, scoring, local=local)
        for job, got in zip(jobs, results):
            assert_results_equal(got, scalar_reference(job, scoring, local=local))

    def test_single_job_matches_scalar(self, rng):
        scoring = random_scoring(rng)
        job = random_job(rng, 30, 12, scoring)
        [got] = sweep_wavefront([job], scoring)
        assert_results_equal(got, scalar_reference(job, scoring))

    def test_track_best_off(self, rng):
        job = random_job(rng, 9, 9, DNA_DEFAULT)
        [got] = sweep_wavefront([job], DNA_DEFAULT, track_best=False)
        want = scalar_reference(job, DNA_DEFAULT, track_best=False)
        assert_results_equal(got, want)
        assert got.best.row == -1

    def test_tie_break_is_row_major(self, rng):
        # Identical blocks -> identical per-block best; and within a block
        # the first (row, col) hit of the max must win, like the scalar.
        scoring = DNA_DEFAULT
        a = random_codes(rng, 25)
        b = np.concatenate([a, a])  # duplicated columns force score ties
        job = BlockJob(a, build_profile(b, scoring),
                       np.zeros(b.size, dtype=DTYPE),
                       np.full(b.size, -(1 << 30), dtype=DTYPE),
                       np.zeros(a.size, dtype=DTYPE),
                       np.full(a.size, -(1 << 30), dtype=DTYPE), 0)
        [got] = sweep_wavefront([job, job], scoring)[:1]
        assert got.best == scalar_reference(job, scoring).best

    def test_row_sink_matches_scalar_per_job(self, rng):
        scoring = random_scoring(rng)
        jobs = [random_job(rng, r, c, scoring)
                for r, c in [(16, 20), (9, 20), (16, 5)]]
        batch_rows: dict[tuple[int, int], tuple] = {}

        def batch_sink(k, i, H, E, F):
            batch_rows[(k, i)] = (H.copy(), E.copy(), F.copy())

        sweep_wavefront(jobs, scoring, row_sink=batch_sink, sink_interval=4)
        for k, job in enumerate(jobs):
            scalar_rows: dict[int, tuple] = {}

            def scalar_sink(i, H, E, F):
                scalar_rows[i] = (H.copy(), E.copy(), F.copy())

            scalar_reference(job, scoring, row_sink=scalar_sink, sink_interval=4)
            assert {i for (kk, i) in batch_rows if kk == k} == set(scalar_rows)
            for i, want in scalar_rows.items():
                for got_arr, want_arr in zip(batch_rows[(k, i)], want):
                    np.testing.assert_array_equal(got_arr, want_arr)

    def test_empty_job_list(self):
        assert sweep_wavefront([], DNA_DEFAULT) == []

    def test_validation(self, rng):
        job = random_job(rng, 6, 6, DNA_DEFAULT)
        with pytest.raises(ConfigError):
            sweep_wavefront([job], DNA_DEFAULT, row_sink=lambda *a: None)
        bad = BlockJob(job.a_codes, job.profile, job.h_top[:-1], job.f_top,
                       job.h_left, job.e_left, 0)
        with pytest.raises(ConfigError):
            sweep_wavefront([bad], DNA_DEFAULT)
        empty = BlockJob(job.a_codes[:0], job.profile, job.h_top, job.f_top,
                         np.empty(0, dtype=DTYPE), np.empty(0, dtype=DTYPE), 0)
        with pytest.raises(ConfigError):
            sweep_wavefront([empty], DNA_DEFAULT)


class TestKernelWorkspace:
    def test_reuse_and_growth(self):
        ws = KernelWorkspace()
        first = ws.take("t", (4, 8))
        assert first.shape == (4, 8) and ws.misses == 1
        again = ws.take("t", (2, 8))  # smaller: prefix view, no allocation
        assert again.shape == (2, 8) and ws.hits == 1
        bigger = ws.take("t", (8, 8))  # grows the high-water mark
        assert bigger.shape == (8, 8) and ws.misses == 2
        assert len(ws) == 1  # still one buffer for the tag

    def test_dtype_keys_are_distinct(self):
        ws = KernelWorkspace()
        a = ws.take("t", (4,), dtype=np.int32)
        b = ws.take("t", (4,), dtype=bool)
        assert a.dtype != b.dtype and len(ws) == 2

    def test_ramp_prefix(self):
        ws = KernelWorkspace()
        wide = ws.ramp(10, 3).copy()
        narrow = ws.ramp(4, 3)
        np.testing.assert_array_equal(narrow, wide[:4])
        np.testing.assert_array_equal(narrow, np.arange(4) * 3)
        assert ws.hits == 1

    def test_sweep_reuses_workspace(self, rng):
        scoring = DNA_DEFAULT
        ws = KernelWorkspace()
        jobs = [random_job(rng, 12, 12, scoring) for _ in range(3)]
        sweep_wavefront(jobs, scoring, workspace=ws)
        misses = ws.misses
        results = sweep_wavefront(jobs, scoring, workspace=ws)
        assert ws.misses == misses  # second sweep allocated nothing new
        for job, got in zip(jobs, results):
            assert_results_equal(got, scalar_reference(job, scoring))
        assert ws.nbytes > 0
        ws.clear()
        assert len(ws) == 0


class TestProfileCache:
    def test_hit_on_equal_content(self, rng):
        cache = ProfileCache(capacity=2)
        b = random_codes(rng, 50)
        p1 = cache.get(b, DNA_DEFAULT)
        p2 = cache.get(b.copy(), DNA_DEFAULT)  # fresh array, same value
        assert p1 is p2
        assert (cache.hits, cache.misses) == (1, 1)
        np.testing.assert_array_equal(p1, build_profile(b, DNA_DEFAULT))

    def test_scoring_is_part_of_the_key(self, rng):
        cache = ProfileCache()
        b = random_codes(rng, 30)
        p1 = cache.get(b, DNA_DEFAULT)
        p2 = cache.get(b, random_scoring(np.random.default_rng(99)))
        assert p1 is not p2 and cache.misses == 2

    def test_lru_eviction(self, rng):
        cache = ProfileCache(capacity=2)
        seqs = [random_codes(rng, 20) for _ in range(3)]
        for s in seqs:
            cache.get(s, DNA_DEFAULT)
        assert cache.evictions == 1 and len(cache) == 2
        cache.get(seqs[0], DNA_DEFAULT)  # evicted -> rebuild
        assert cache.misses == 4
        cache.get(seqs[2], DNA_DEFAULT)  # still resident
        assert cache.hits == 1

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            ProfileCache(capacity=0)

    def test_cached_profile_default_cache(self, rng):
        b = random_codes(rng, 40)
        assert cached_profile(b, DNA_DEFAULT) is cached_profile(b, DNA_DEFAULT)


class TestKernelSelector:
    def test_validate_kernel(self):
        for k in KERNELS:
            assert validate_kernel(k) == k
        with pytest.raises(ConfigError):
            validate_kernel("simd")
        with pytest.raises(ConfigError):
            ChainConfig(kernel="simd")
        with pytest.raises(ConfigError):
            compute_blocked(np.zeros(4, np.uint8), np.zeros(4, np.uint8),
                            DNA_DEFAULT, kernel="simd")

    @pytest.mark.parametrize("local", [True, False])
    def test_compute_blocked_batched_equals_scalar(self, rng, local):
        scoring = random_scoring(rng)
        a = random_codes(rng, 150, with_n=True)
        b = random_codes(rng, 190, with_n=True)
        ref = compute_blocked(a, b, scoring, block_rows=32, block_cols=48,
                              local=local)
        ws = KernelWorkspace()
        got = compute_blocked(a, b, scoring, block_rows=32, block_cols=48,
                              local=local, kernel="batched", workspace=ws)
        assert got.best == ref.best
        misses = ws.misses
        again = compute_blocked(a, b, scoring, block_rows=32, block_cols=48,
                                local=local, kernel="batched", workspace=ws)
        assert again.best == ref.best
        assert ws.misses == misses  # workspace amortised the second run

    def test_compute_blocked_batched_with_pruning(self, rng):
        a = random_codes(rng, 300)
        b = mutated_copy(rng, a, snp_rate=0.03)
        ref = compute_blocked(a, b, DNA_DEFAULT, block_rows=32, block_cols=32,
                              pruner=BlockPruner(match=DNA_DEFAULT.match))
        got = compute_blocked(a, b, DNA_DEFAULT, block_rows=32, block_cols=32,
                              pruner=BlockPruner(match=DNA_DEFAULT.match),
                              kernel="batched")
        assert got.best == ref.best
        assert got.blocks_pruned > 0  # the batched schedule still prunes

    def test_chain_batched(self, rng):
        from repro.device import ENV1_HETEROGENEOUS

        a, b = random_codes(rng, 300), random_codes(rng, 400)
        runs = [align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                                config=ChainConfig(block_rows=64, kernel=k))
                for k in KERNELS]
        assert runs[0].best == runs[1].best
        assert runs[1].config.kernel == "batched"

    def test_procchain_batched(self, rng):
        a, b = random_codes(rng, 200), random_codes(rng, 260)
        runs = [align_multi_process(a, b, DNA_DEFAULT, workers=2,
                                    block_rows=64, kernel=k)
                for k in KERNELS]
        assert runs[0].best == runs[1].best
        assert runs[1].kernel == "batched"

    def test_pool_batched(self, rng):
        a, b = random_codes(rng, 200), random_codes(rng, 260)
        with WorkerPool(2, max_block_rows=64) as pool:
            runs = [pool.align(a, b, DNA_DEFAULT, block_rows=64, kernel=k)
                    for k in KERNELS]
        assert runs[0].best == runs[1].best
        assert runs[1].kernel == "batched"

    def test_pool_rejects_bad_kernel(self, rng):
        a, b = random_codes(rng, 40), random_codes(rng, 40)
        with WorkerPool(1, max_block_rows=64) as pool:
            with pytest.raises(ConfigError):
                pool.align(a, b, DNA_DEFAULT, block_rows=32, kernel="simd")


class TestCli:
    def _fasta_pair(self, tmp_path, rng):
        from repro import seq

        pa, pb = tmp_path / "a.fa", tmp_path / "b.fa"
        a = random_codes(rng, 300)
        seq.write_fasta(pa, seq.FastaRecord("a", "", a))
        seq.write_fasta(pb, seq.FastaRecord("b", "", mutated_copy(rng, a, 0.05)))
        return str(pa), str(pb)

    @pytest.mark.parametrize("backend_args", [
        [], ["--backend", "process", "--workers", "2"],
    ])
    def test_align_kernel_flag(self, tmp_path, rng, capsys, backend_args):
        from repro.cli import main

        pa, pb = self._fasta_pair(tmp_path, rng)
        rc = main(["align", pa, pb, "--block-rows", "64",
                   "--kernel", "batched", *backend_args])
        assert rc == 0
        assert "kernel=batched" in capsys.readouterr().out

    def test_align_rejects_bad_kernel(self, tmp_path, rng):
        from repro.cli import main

        pa, pb = self._fasta_pair(tmp_path, rng)
        with pytest.raises(SystemExit):
            main(["align", pa, pb, "--kernel", "simd"])
