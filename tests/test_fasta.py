"""Unit tests: repro.seq.fasta."""

from __future__ import annotations

import io

import pytest

from repro.errors import FastaError
from repro.seq import FastaRecord, encode, iter_fasta, read_fasta, read_single, write_fasta


def test_single_record():
    recs = read_fasta(io.StringIO(">chr1 test\nACGT\nACGT\n"))
    assert len(recs) == 1
    assert recs[0].name == "chr1"
    assert recs[0].description == "chr1 test"
    assert recs[0].text == "ACGTACGT"
    assert len(recs[0]) == 8


def test_multiple_records():
    recs = read_fasta(io.StringIO(">a\nAC\n>b\nGT\n>c\nNN\n"))
    assert [r.name for r in recs] == ["a", "b", "c"]
    assert [r.text for r in recs] == ["AC", "GT", "NN"]


def test_blank_lines_and_crlf():
    recs = read_fasta(io.StringIO(">a\r\nAC\r\n\r\nGT\r\n"))
    assert recs[0].text == "ACGT"


def test_old_style_comment_lines_skipped():
    recs = read_fasta(io.StringIO(">a\n;comment\nAC\n"))
    assert recs[0].text == "AC"


def test_sequence_before_header_rejected():
    with pytest.raises(FastaError, match="before first"):
        read_fasta(io.StringIO("ACGT\n>a\nAC\n"))


def test_empty_record_rejected():
    with pytest.raises(FastaError, match="no sequence data"):
        read_fasta(io.StringIO(">a\n>b\nAC\n"))


def test_empty_input_rejected():
    with pytest.raises(FastaError, match="empty FASTA"):
        read_fasta(io.StringIO(""))


def test_lowercase_and_unknown_bases():
    recs = read_fasta(io.StringIO(">a\nacgtx\n"))
    assert recs[0].text == "ACGTN"


def test_read_single_rejects_multi():
    with pytest.raises(FastaError, match="exactly one"):
        read_single(io.StringIO(">a\nAC\n>b\nGT\n"))


def test_read_single_ok():
    rec = read_single(io.StringIO(">only\nACGT\n"))
    assert rec.name == "only"


def test_iter_is_lazy_per_record():
    it = iter_fasta(io.StringIO(">a\nAC\n>b\nGT\n"))
    first = next(it)
    assert first.name == "a"
    assert next(it).name == "b"


def test_write_read_roundtrip(tmp_path):
    rec = FastaRecord(name="x", description="x long description", codes=encode("ACGTN" * 40))
    path = tmp_path / "x.fa"
    write_fasta(path, rec, width=30)
    back = read_single(path)
    assert back.description == "x long description"
    assert back.text == rec.text
    # every sequence line except possibly the last respects the width
    lines = path.read_text().splitlines()[1:]
    assert all(len(line) <= 30 for line in lines)


def test_write_multiple_records(tmp_path):
    recs = [
        FastaRecord(name="a", description="a", codes=encode("AC")),
        FastaRecord(name="b", description="b", codes=encode("GGTT")),
    ]
    path = tmp_path / "multi.fa"
    write_fasta(path, recs)
    back = read_fasta(path)
    assert [r.text for r in back] == ["AC", "GGTT"]


def test_write_rejects_bad_width(tmp_path):
    rec = FastaRecord(name="a", description="a", codes=encode("AC"))
    with pytest.raises(FastaError):
        write_fasta(tmp_path / "x.fa", rec, width=0)


def test_read_from_path(tmp_path):
    p = tmp_path / "f.fa"
    p.write_text(">z\nACGT\n")
    assert read_single(p).text == "ACGT"
