"""Checkpoint-based recovery on the real-process engines (INTERNALS.md §9)
plus the teardown/timeout fixes that ride along with it:

* ``save_checkpoint``/``load_checkpoint`` round-trip extension-less paths;
* ``collect_results`` handles an already-expired deadline deterministically
  (drains queued results, never passes a negative timeout down);
* ``WorkerPool.close()`` is exception-safe and idempotent — an injected
  ring-unlink failure must not leak the scoreboard/progress segments;
* the shared-memory :class:`CheckpointArea` / :class:`RetryPolicy` layer;
* killing one slab worker mid-comparison with ``max_restarts >= 1`` still
  yields the exact optimal score on both real-process backends, with the
  recovery visible in the result, the metrics registry and the tracer,
  and with no shared-memory segments leaked.
"""

from __future__ import annotations

import queue
import os
import signal
import time

import numpy as np
import pytest

from repro.comm.shmring import SHM_NAME_PREFIX, list_segments
from repro.comm.progress import PROGRESS_NAME_PREFIX
from repro.comm.scoreboard import SCOREBOARD_NAME_PREFIX
from repro.errors import CommError, ConfigError, PartitionError
from repro.multigpu import (
    ChainCheckpoint,
    CheckpointArea,
    RetryPolicy,
    WorkerPool,
    align_multi_process,
    load_checkpoint,
    save_checkpoint,
    surviving_partition,
)
from repro.multigpu.checkpoint import CHECKPOINT_NAME_PREFIX
from repro.multigpu.procchain import collect_results
from repro.obs.registry import MetricsRegistry
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive
from repro.sw.kernel import BestCell

from helpers import random_codes

ALL_PREFIXES = (SHM_NAME_PREFIX, SCOREBOARD_NAME_PREFIX,
                PROGRESS_NAME_PREFIX, CHECKPOINT_NAME_PREFIX)


def _segments():
    return [name for prefix in ALL_PREFIXES for name in list_segments(prefix)]


def _counter_value(registry, name):
    series = registry.snapshot()["counters"].get(name, {}).get("series", [])
    return sum(entry["value"] for entry in series)


# ---------------------------------------------------------------------------
# satellite: .npz path normalisation round-trip
# ---------------------------------------------------------------------------


class TestCheckpointPathRoundTrip:
    def _checkpoint(self):
        return ChainCheckpoint(
            row=32,
            h_row=np.arange(10, dtype=np.int32),
            f_row=np.zeros(10, dtype=np.int32),
            best=BestCell(5, 3, 4),
            elapsed_s=1.5,
        )

    def test_round_trip_with_extension(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, self._checkpoint())
        assert load_checkpoint(path).row == 32

    def test_round_trip_without_extension(self, tmp_path):
        """np.savez silently appends .npz; loading the exact path that was
        saved must still work."""
        path = tmp_path / "ck"
        save_checkpoint(path, self._checkpoint())
        loaded = load_checkpoint(path)  # no .npz in sight
        assert loaded.row == 32
        assert np.array_equal(loaded.h_row, np.arange(10, dtype=np.int32))

    def test_load_accepts_either_spelling(self, tmp_path):
        path = tmp_path / "ck"
        save_checkpoint(path, self._checkpoint())
        assert load_checkpoint(str(path) + ".npz").row == 32


# ---------------------------------------------------------------------------
# satellite: collect_results with an already-expired deadline
# ---------------------------------------------------------------------------


class _StubProc:
    def __init__(self, alive=True, exitcode=None):
        self._alive = alive
        self.exitcode = exitcode

    def is_alive(self):
        return self._alive


def _msg(worker_id, score=7, err=None):
    return (worker_id, score, 1, 2, 0, 0, None, err, [])


class TestCollectResultsExpiredDeadline:
    def test_queued_results_survive_an_expired_deadline(self):
        """Results already in the queue when the deadline has passed are
        drained, not discarded; only truly missing workers time out."""
        q = queue.Queue()
        q.put(_msg(0))
        messages, failures = collect_results(
            q, [_StubProc(), _StubProc()], {0, 1},
            deadline=time.monotonic() - 5.0)
        assert set(messages) == {0}
        assert len(failures) == 1
        key, desc, kind = failures[0]
        assert (key, kind) == (1, "timeout")
        assert "no result before the timeout" in desc

    def test_expired_deadline_is_deterministic(self):
        """A deadline hours in the past must not underflow into a negative
        queue timeout — the call returns immediately with timeout kinds."""
        q = queue.Queue()
        t0 = time.monotonic()
        messages, failures = collect_results(
            q, [_StubProc()], {0}, deadline=time.monotonic() - 3600.0)
        assert time.monotonic() - t0 < 1.0
        assert messages == {}
        assert [(k, kind) for k, _d, kind in failures] == [(0, "timeout")]

    def test_error_and_death_kinds(self):
        q = queue.Queue()
        q.put(_msg(0, err="CommError('border timed out')"))
        dead = _StubProc(alive=False, exitcode=-9)
        messages, failures = collect_results(
            q, [_StubProc(), dead], {0, 1},
            deadline=time.monotonic() + 30.0)
        assert messages == {}
        kinds = {key: kind for key, _desc, kind in failures}
        assert kinds == {0: "error", 1: "died"}


# ---------------------------------------------------------------------------
# satellite: exception-safe, idempotent WorkerPool.close()
# ---------------------------------------------------------------------------


class TestPoolCloseExceptionSafety:
    def test_injected_unlink_failure_leaks_nothing(self, rng):
        """A raise from a ring unlink must not skip the scoreboard and
        progress unlinks — every segment is gone afterwards and the
        errors are aggregated into one RuntimeError."""
        pool = WorkerPool(3, max_block_rows=32)
        ring = pool._rings[0]
        original_unlink = ring.unlink

        def exploding_unlink():
            original_unlink()  # actually release it: we test ordering, not leaks
            raise OSError("injected: segment already removed")

        ring.unlink = exploding_unlink
        with pytest.raises(RuntimeError, match="injected"):
            pool.close()
        assert _segments() == []
        # Idempotent: the second close is a no-op, not a second raise.
        pool.close()

    def test_clean_close_raises_nothing(self):
        pool = WorkerPool(2, max_block_rows=32)
        pool.close()
        pool.close()
        assert _segments() == []


# ---------------------------------------------------------------------------
# the checkpoint area + retry policy layer
# ---------------------------------------------------------------------------


class TestCheckpointArea:
    def test_publish_assemble_round_trip(self):
        with CheckpointArea([4, 3], history=3) as area:
            area.publish(0, 8, np.arange(4, dtype=np.int32),
                         np.zeros(4, dtype=np.int32), BestCell(7, 2, 1), 3, 1)
            area.publish(1, 8, 10 + np.arange(3, dtype=np.int32),
                         np.zeros(3, dtype=np.int32), BestCell(9, 5, 6), 2, 0)
            assert area.consistent_row() == 8
            h, f, best, checked, pruned = area.assemble(8)
            assert h.tolist() == [0, 1, 2, 3, 10, 11, 12]
            assert best == BestCell(9, 5, 6)
            assert (checked, pruned) == (5, 1)

    def test_consistent_row_is_newest_common(self):
        with CheckpointArea([2, 2], history=4) as area:
            h = np.zeros(2, dtype=np.int32)
            for row in (8, 16, 24):
                area.publish(0, row, h, h, BestCell.none())
            for row in (8, 16):
                area.publish(1, row, h, h, BestCell.none())
            assert area.newest_row(0) == 24
            assert area.newest_row(1) == 16
            assert area.consistent_row() == 16

    def test_no_common_row_resumes_from_scratch(self):
        with CheckpointArea([2, 2], history=2) as area:
            h = np.zeros(2, dtype=np.int32)
            area.publish(0, 8, h, h, BestCell.none())
            assert area.consistent_row() == 0

    def test_history_ring_keeps_newest(self):
        with CheckpointArea([1], history=2) as area:
            h = np.zeros(1, dtype=np.int32)
            for row in (8, 16, 24):
                area.publish(0, row, h, h, BestCell.none())
            rows = [e.row for e in area.entries(0)]
            assert rows == [16, 24]

    def test_width_and_slot_validation(self):
        with CheckpointArea([3]) as area:
            h3 = np.zeros(3, dtype=np.int32)
            with pytest.raises(CommError):
                area.publish(0, 8, np.zeros(2, dtype=np.int32), h3,
                             BestCell.none())
            with pytest.raises(CommError):
                area.publish(1, 8, h3, h3, BestCell.none())
            with pytest.raises(CommError):
                area.assemble(99)

    def test_pickle_attaches_and_segment_unlinks(self):
        import pickle

        area = CheckpointArea([2])
        assert list_segments(CHECKPOINT_NAME_PREFIX)
        child = pickle.loads(pickle.dumps(area))
        h = np.ones(2, dtype=np.int32)
        child.publish(0, 4, h, h, BestCell(1, 0, 0))
        child.close()
        assert area.newest_row(0) == 4
        area.unlink()
        area.unlink()  # idempotent
        assert list_segments(CHECKPOINT_NAME_PREFIX) == []


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(max_restarts=5, backoff_s=1.0,
                             backoff_multiplier=4.0, max_backoff_s=10.0)
        assert [policy.delay_s(i) for i in range(4)] == [1.0, 4.0, 10.0, 10.0]

    def test_permanent_failure_classification(self):
        assert RetryPolicy.is_permanent("worker 0: ConfigError('bad')")
        assert RetryPolicy.is_permanent("PartitionError('empty partition')")
        assert not RetryPolicy.is_permanent(
            "worker 1: died with exit code -9 before reporting a result")
        assert not RetryPolicy.is_permanent("CommError('recv timed out')")

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_restarts=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)


class TestSurvivingPartition:
    def test_drops_dead_and_renumbers(self):
        slabs, weights = surviving_partition(100, [1.0, 2.0, 1.0], dead=[1])
        assert weights == [1.0, 1.0]
        assert [s.device_index for s in slabs] == [0, 1]
        assert slabs[0].col0 == 0 and slabs[-1].col1 == 100

    def test_no_survivors_raises(self):
        with pytest.raises(PartitionError):
            surviving_partition(100, [1.0, 1.0], dead=[0, 1])


# ---------------------------------------------------------------------------
# the tentpole: kill a worker mid-comparison, recover, exact score
# ---------------------------------------------------------------------------


@pytest.fixture
def pair(rng):
    a = random_codes(rng, 280)
    b = random_codes(rng, 360)
    want = sw_score_naive(a, b, DNA_DEFAULT)
    return a, b, want


class TestProcessRecovery:
    def test_crash_mid_run_recovers_to_exact_score(self, pair):
        a, b, (want, end_i, end_j) = pair
        registry = MetricsRegistry()
        res = align_multi_process(
            a, b, DNA_DEFAULT, workers=3, block_rows=16, timeout_s=120.0,
            border_timeout_s=5.0, max_restarts=2, restart_backoff_s=0.01,
            metrics=registry,
            _fault=(1, 9))  # block 9 is off the checkpoint ladder (stride 4)
        assert res.score == want
        assert (res.best.row, res.best.col) == (end_i, end_j)
        assert res.restarts == 1
        assert res.rows_recomputed > 0
        assert res.workers == 2  # the dead worker was dropped
        assert _counter_value(registry, "worker_restarts") == 1
        assert _counter_value(registry, "rows_recomputed") > 0
        assert any(iv.kind == "recovery" and iv.actor == "supervisor"
                   for iv in res.tracer.intervals)
        assert _segments() == []

    def test_matches_no_failure_run_exactly(self, pair):
        a, b, _ = pair
        clean = align_multi_process(a, b, DNA_DEFAULT, workers=3,
                                    block_rows=16, timeout_s=120.0)
        recovered = align_multi_process(
            a, b, DNA_DEFAULT, workers=3, block_rows=16, timeout_s=120.0,
            border_timeout_s=5.0, max_restarts=1, restart_backoff_s=0.01,
            _fault=(2, 7))
        assert recovered.score == clean.score
        assert recovered.best == clean.best

    def test_recovery_with_pruning_stays_exact(self, rng):
        """Distributed pruning shares the scoreboard across attempts; the
        score and end cell must still be exact after a recovery."""
        a = random_codes(rng, 240)
        b = np.concatenate([a[:120], random_codes(rng, 120)])  # similar pair
        want, end_i, end_j = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(
            a, b, DNA_DEFAULT, workers=2, block_rows=16, timeout_s=120.0,
            border_timeout_s=5.0, pruning=True, max_restarts=1,
            restart_backoff_s=0.01, _fault=(1, 5))
        assert res.score == want
        assert (res.best.row, res.best.col) == (end_i, end_j)
        assert res.restarts == 1
        assert _segments() == []

    def test_fail_fast_without_restarts(self, pair):
        """max_restarts=0 keeps the old behaviour: one RuntimeError naming
        the dead worker, nothing leaked."""
        a, b, _ = pair
        with pytest.raises(RuntimeError, match=r"worker 1.*died"):
            align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=16,
                                timeout_s=120.0, border_timeout_s=5.0,
                                _fault=(1, 3))
        assert _segments() == []

    def test_policy_exhaustion_raises(self, pair):
        """Every attempt crashes the first worker: the policy runs out and
        the last failure surfaces."""
        a, b, _ = pair

        # _fault only fires on attempt 0, so exhaustion needs a worker
        # that cannot succeed at all: a one-worker chain whose only
        # member dies leaves no survivors to re-partition across.
        with pytest.raises(RuntimeError, match="recovery impossible|died"):
            align_multi_process(a, b, DNA_DEFAULT, workers=1, block_rows=16,
                                timeout_s=120.0, max_restarts=3,
                                restart_backoff_s=0.01, _fault=(0, 3))
        assert _segments() == []


class TestPoolRecovery:
    def test_crash_mid_run_recovers_and_pool_survives(self, pair):
        a, b, (want, end_i, end_j) = pair
        registry = MetricsRegistry()
        with WorkerPool(3, max_block_rows=32, border_timeout_s=5.0) as pool:
            res = pool.align(a, b, DNA_DEFAULT, block_rows=16,
                             timeout_s=120.0, max_restarts=2,
                             restart_backoff_s=0.01, metrics=registry,
                             _fault=(1, 9))
            assert res.score == want
            assert (res.best.row, res.best.col) == (end_i, end_j)
            assert res.restarts == 1
            assert res.rows_recomputed > 0
            assert not pool.broken
            # The pool keeps serving comparisons on the shrunken chain.
            again = pool.align(a, b, DNA_DEFAULT, block_rows=16,
                               timeout_s=120.0)
            assert again.score == want and again.restarts == 0
        assert _counter_value(registry, "worker_restarts") == 1
        assert _counter_value(registry, "rows_recomputed") > 0
        assert _segments() == []

    def test_real_sigkill_recovers(self, pair):
        """An actual SIGKILL (not the crash hook): kill one pool worker,
        then align with restarts allowed — exact score, one recovery."""
        a, b, (want, _i, _j) = pair
        with WorkerPool(3, max_block_rows=32, border_timeout_s=5.0) as pool:
            victim = pool.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pool._procs[1].is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            res = pool.align(a, b, DNA_DEFAULT, block_rows=16,
                             timeout_s=120.0, max_restarts=1,
                             restart_backoff_s=0.01)
            assert res.score == want
            assert res.restarts == 1
            assert res.workers == 2
        assert _segments() == []

    def test_fail_fast_marks_pool_broken(self, pair):
        a, b, _ = pair
        with WorkerPool(3, max_block_rows=32, border_timeout_s=5.0) as pool:
            with pytest.raises(RuntimeError, match=r"worker 1.*died"):
                pool.align(a, b, DNA_DEFAULT, block_rows=16,
                           timeout_s=120.0, _fault=(1, 3))
            assert pool.broken
            with pytest.raises(ConfigError, match="broken"):
                pool.align(a, b, DNA_DEFAULT, block_rows=16)
        assert _segments() == []
