"""Unit tests: repro.obs.registry (counters/gauges/histograms + merge)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import MetricsRegistry
from repro.obs.instruments import EngineInstruments, finalize_run_metrics


class TestCounters:
    def test_inc_and_value_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("blocks_computed", help="swept")
        c.inc(3, device="gpu0")
        c.inc(2, device="gpu0")
        c.inc(7, device="gpu1")
        assert c.value(device="gpu0") == 5
        assert c.value(device="gpu1") == 7
        assert c.value(device="gpu9") == 0
        assert c.total() == 12

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ObsError):
            c.inc(-1)

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObsError):
            reg.gauge("x")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError):
            reg.counter("1bad")
        with pytest.raises(ObsError):
            reg.counter("has space")
        with pytest.raises(ObsError):
            reg.counter("ok").inc(1, **{"bad-label": "v"})


class TestGauges:
    def test_set_is_last_write_wins(self):
        g = MetricsRegistry().gauge("rate")
        g.set(0.5, backend="sim")
        g.set(0.25, backend="sim")
        assert g.value(backend="sim") == 0.25

    def test_missing_sample_raises(self):
        g = MetricsRegistry().gauge("rate")
        with pytest.raises(ObsError):
            g.value(backend="nope")


class TestHistograms:
    def test_observe_buckets_boundaries_inclusive(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1)   # == first bound -> first bucket (le is inclusive)
        h.observe(0.5)
        h.observe(5.0)   # overflow
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.6)

    def test_rebind_with_different_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ObsError):
            reg.histogram("lat", buckets=(1.0, 3.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ObsError):
            MetricsRegistry().histogram("lat", buckets=())


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("blocks", help="b").inc(4, device="w0")
        reg.gauge("rate").set(0.5, backend="sim")
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.2, device="w0")
        return reg

    def test_snapshot_is_json_safe(self):
        snap = self._populated().snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["blocks"]["series"] == [
            {"labels": {"device": "w0"}, "value": 4}]

    def test_merge_counters_and_histograms_add(self):
        parent = self._populated()
        parent.merge_snapshot(self._populated().snapshot())
        assert parent.counter("blocks").value(device="w0") == 8
        assert parent.histogram("lat", buckets=(0.1, 1.0)).count(device="w0") == 2

    def test_merge_gauges_take_incoming_value(self):
        parent = self._populated()
        child = MetricsRegistry()
        child.gauge("rate").set(0.75, backend="sim")
        parent.merge_snapshot(child.snapshot())
        assert parent.gauge("rate").value(backend="sim") == 0.75

    def test_merge_into_empty_registry_reconstructs_everything(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self._populated().snapshot())
        assert parent.snapshot() == self._populated().snapshot()

    def test_merge_bucket_layout_mismatch_rejected(self):
        parent = MetricsRegistry()
        snap = self._populated().snapshot()
        snap["histograms"]["lat"]["series"][0]["counts"] = [1, 2]  # wrong len
        with pytest.raises(ObsError):
            parent.merge_snapshot(snap)

    def test_merge_roundtrips_through_json(self):
        """The worker->parent wire format survives serialisation exactly."""
        parent = MetricsRegistry()
        parent.merge_snapshot(json.loads(json.dumps(self._populated().snapshot())))
        assert parent.snapshot() == self._populated().snapshot()


class TestPrometheusExport:
    def test_text_format_shape(self):
        reg = MetricsRegistry()
        reg.counter("blocks", help="swept blocks").inc(3, device="w0")
        reg.histogram("lat", help="latency", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus()
        assert "# HELP blocks swept blocks" in text
        assert "# TYPE blocks counter" in text
        assert 'blocks{device="w0"} 3' in text
        assert "# TYPE lat histogram" in text
        # Cumulative buckets + the +Inf bucket + sum/count.
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.05" in text
        assert "lat_count 1" in text

    def test_cumulative_bucket_counts(self):
        h_reg = MetricsRegistry()
        h = h_reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = h_reg.to_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_label_values_escaped_per_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("odd").inc(2, path='C:\\data\n"prod"')
        line = next(l for l in reg.to_prometheus().splitlines()
                    if l.startswith("odd{"))
        # Backslash, newline and quote each escaped; exactly one line.
        assert line == r'odd{path="C:\\data\n\"prod\""} 2'

    def test_label_escaping_roundtrips(self):
        """A Prometheus-style parse of the exposition recovers the raw
        label values (backslash escaped first, or '\\' + 'n' would
        collapse into a newline)."""
        nasty = ['a\\b', 'say "hi"', 'line1\nline2', 'tail\\', '\\n']
        reg = MetricsRegistry()
        for i, value in enumerate(nasty):
            reg.counter("rt").inc(i + 1, v=value)

        def unescape(s):
            out, i = [], 0
            while i < len(s):
                if s[i] == "\\":
                    out.append({"\\": "\\", '"': '"', "n": "\n"}[s[i + 1]])
                    i += 2
                else:
                    out.append(s[i])
                    i += 1
            return "".join(out)

        seen = []
        for line in reg.to_prometheus().splitlines():
            if line.startswith("rt{"):
                body = line[line.index('{') + 1:line.rindex('}')]
                assert body.startswith('v="') and body.endswith('"')
                seen.append(unescape(body[3:-1]))
        assert sorted(seen) == sorted(nasty)

    def test_to_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("x").inc(1)
        assert json.loads(reg.to_json()) == reg.snapshot()


class TestInstruments:
    def test_standard_families_and_labels(self):
        reg = MetricsRegistry()
        ins = EngineInstruments(reg, "gpu0")
        ins.block_computed(0.002, cells=4096)
        ins.block_pruned()
        ins.border_sent(520)
        ins.border_received(260)
        assert reg.counter("blocks_computed").value(device="gpu0") == 1
        assert reg.counter("blocks_pruned").value(device="gpu0") == 1
        assert reg.counter("cells_computed").value(device="gpu0") == 4096
        assert reg.counter("border_bytes_sent").value(device="gpu0") == 520
        assert reg.counter("border_bytes_received").value(device="gpu0") == 260
        assert reg.histogram("block_sweep_seconds",
                             buckets=__import__("repro.obs.instruments",
                                                fromlist=["SWEEP_BUCKETS"]
                                                ).SWEEP_BUCKETS
                             ).count(device="gpu0") == 1

    def test_two_devices_share_families(self):
        reg = MetricsRegistry()
        EngineInstruments(reg, "a").block_computed(0.001)
        EngineInstruments(reg, "b").block_computed(0.001)
        assert reg.counter("blocks_computed").total() == 2

    def test_finalize_run_metrics(self):
        reg = MetricsRegistry()
        finalize_run_metrics(reg, backend="sim", blocks_checked=10,
                             blocks_pruned=4, wall_time_s=1.5, gcups=2.0)
        assert reg.counter("alignments_total").value(backend="sim") == 1
        assert reg.gauge("prune_rate").value(backend="sim") == pytest.approx(0.4)
        assert reg.gauge("last_run_wall_time_s").value(backend="sim") == 1.5
        assert reg.gauge("last_run_gcups").value(backend="sim") == 2.0

    def test_finalize_zero_checked_is_zero_rate(self):
        reg = MetricsRegistry()
        finalize_run_metrics(reg, backend="sim", blocks_checked=0,
                             blocks_pruned=0, wall_time_s=1.0, gcups=1.0)
        assert reg.gauge("prune_rate").value(backend="sim") == 0.0
