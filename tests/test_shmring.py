"""Unit + concurrent stress tests: repro.comm.shmring (real shared memory)."""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.comm.shmring import SHM_NAME_PREFIX, ShmRing, slot_bytes_for
from repro.errors import CommError
from repro.sw.constants import DTYPE


def _message(index: int, rows: int) -> tuple[np.ndarray, np.ndarray, int]:
    """Deterministic message contents derived from the message index."""
    h = (np.arange(rows, dtype=DTYPE) * 7 + index) % 1000
    e = (np.arange(rows, dtype=DTYPE) * 13 - index) % 997
    return h, e, index * 3 - 1


def _shm_names() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith(SHM_NAME_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _producer_ok(ring: ShmRing, count: int, rows: int) -> None:
    for i in range(count):
        h, e, corner = _message(i, 1 + (i * 37) % rows)
        ring.send_border(h, e, corner, timeout=30.0)


def _producer_crash(ring: ShmRing, count: int, rows: int) -> None:
    for i in range(count):
        h, e, corner = _message(i, rows)
        ring.send_border(h, e, corner, timeout=30.0)
    os._exit(1)  # hard crash: no close, no further messages


class TestSingleProcess:
    def test_fifo_and_wraparound(self):
        """Many more messages than slots: cursors wrap, contents survive."""
        ctx = mp.get_context()
        with ShmRing(ctx, capacity=3, max_rows=16) as ring:
            for i in range(20):
                h, e, corner = _message(i, 1 + i % 16)
                ring.send_border(h, e, corner, timeout=1.0)
                got_h, got_e, got_c = ring.recv_border(timeout=1.0)
                np.testing.assert_array_equal(got_h, h)
                np.testing.assert_array_equal(got_e, e)
                assert got_c == corner
            assert ring.sent == ring.received == 20

    def test_full_ring_blocks_then_times_out(self):
        ctx = mp.get_context()
        with ShmRing(ctx, capacity=2, max_rows=4) as ring:
            h, e, _ = _message(0, 4)
            ring.send_border(h, e, 0, timeout=1.0)
            ring.send_border(h, e, 1, timeout=1.0)
            with pytest.raises(CommError, match="full"):
                ring.send_border(h, e, 2, timeout=0.05)
            # Draining one slot unblocks the producer side again.
            ring.recv_border(timeout=1.0)
            ring.send_border(h, e, 2, timeout=1.0)

    def test_empty_ring_times_out(self):
        ctx = mp.get_context()
        with ShmRing(ctx, capacity=2, max_rows=4) as ring:
            with pytest.raises(CommError, match="empty"):
                ring.recv_border(timeout=0.05)

    def test_rejects_bad_messages_and_params(self):
        ctx = mp.get_context()
        with pytest.raises(CommError):
            ShmRing(ctx, capacity=0, max_rows=4)
        with pytest.raises(CommError):
            slot_bytes_for(0)
        with ShmRing(ctx, capacity=2, max_rows=4) as ring:
            too_long = np.zeros(5, dtype=DTYPE)
            with pytest.raises(CommError, match="rows"):
                ring.send_border(too_long, too_long, 0, timeout=0.1)
            with pytest.raises(CommError, match="lengths"):
                ring.send_border(np.zeros(3, dtype=DTYPE),
                                 np.zeros(2, dtype=DTYPE), 0, timeout=0.1)


class TestConcurrent:
    @pytest.mark.parametrize("capacity", [1, 3, 8])
    def test_stress_cross_process_fifo(self, capacity):
        """A real producer process; every message arrives in order, intact."""
        ctx = mp.get_context()
        count, rows = 300, 32
        ring = ShmRing(ctx, capacity=capacity, max_rows=rows)
        try:
            proc = ctx.Process(target=_producer_ok, args=(ring, count, rows))
            proc.start()
            for i in range(count):
                h, e, corner = ring.recv_border(timeout=30.0)
                want_h, want_e, want_c = _message(i, 1 + (i * 37) % rows)
                np.testing.assert_array_equal(h, want_h)
                np.testing.assert_array_equal(e, want_e)
                assert corner == want_c
            proc.join(timeout=10.0)
            assert proc.exitcode == 0
        finally:
            ring.unlink()

    def test_spawn_context_roundtrip(self):
        """The ring pickles across a spawn boundary and still delivers."""
        ctx = mp.get_context("spawn")
        count, rows = 10, 8
        ring = ShmRing(ctx, capacity=2, max_rows=rows)
        try:
            proc = ctx.Process(target=_producer_ok, args=(ring, count, rows))
            proc.start()
            for i in range(count):
                h, e, corner = ring.recv_border(timeout=30.0)
                want_h, want_e, want_c = _message(i, 1 + (i * 37) % rows)
                np.testing.assert_array_equal(h, want_h)
                assert corner == want_c
            proc.join(timeout=30.0)
            assert proc.exitcode == 0
        finally:
            ring.unlink()

    def test_producer_crash_mid_stream(self):
        """A dead producer surfaces as a bounded timeout, not a hang."""
        ctx = mp.get_context()
        sent = 3
        ring = ShmRing(ctx, capacity=8, max_rows=4)
        try:
            proc = ctx.Process(target=_producer_crash, args=(ring, sent, 4))
            proc.start()
            proc.join(timeout=10.0)
            assert proc.exitcode == 1
            # The messages sent before the crash are intact...
            for i in range(sent):
                h, _e, corner = ring.recv_border(timeout=5.0)
                want_h, _we, want_c = _message(i, 4)
                np.testing.assert_array_equal(h, want_h)
                assert corner == want_c
            # ...and the next receive fails cleanly within its timeout.
            with pytest.raises(CommError, match="timed out"):
                ring.recv_border(timeout=0.2)
        finally:
            ring.unlink()


class TestTeardown:
    def test_unlink_removes_the_segment(self):
        ctx = mp.get_context()
        before = _shm_names()
        ring = ShmRing(ctx, capacity=2, max_rows=4)
        assert ring.name in _shm_names()
        ring.unlink()
        assert _shm_names() <= before
        ring.unlink()  # idempotent

    def test_no_leaks_after_concurrent_use(self):
        before = _shm_names()
        ctx = mp.get_context()
        ring = ShmRing(ctx, capacity=2, max_rows=8)
        proc = ctx.Process(target=_producer_ok, args=(ring, 5, 8))
        proc.start()
        for _ in range(5):
            ring.recv_border(timeout=10.0)
        proc.join(timeout=10.0)
        ring.unlink()
        assert _shm_names() <= before
