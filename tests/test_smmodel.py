"""Unit tests: repro.device.smmodel."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.device import GTX_680, SMModel, calibrated
from repro.errors import DeviceError
from repro.multigpu import ChainConfig, MatrixWorkload, MultiGpuChain
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import random_codes


@pytest.fixture
def model():
    return SMModel(sm_count=8, per_sm_gcups=5.0, min_block_cols=1024, rows_per_step=4)


class TestSMModel:
    def test_peak(self, model):
        assert model.peak_gcups == 40.0

    def test_concurrent_blocks_occupancy(self, model):
        assert model.concurrent_blocks(512) == 1      # below one block's width
        assert model.concurrent_blocks(4096) == 4
        assert model.concurrent_blocks(8192) == 8
        assert model.concurrent_blocks(10**7) == 8    # capped by SM count

    def test_pipeline_efficiency_bounds(self, model):
        assert model.pipeline_efficiency(4, 1) == 1.0  # single stage: no fill
        eff = model.pipeline_efficiency(4, 8)          # K=1, T=8
        assert eff == pytest.approx(1 / 8)
        assert model.pipeline_efficiency(4096, 8) > 0.99

    def test_effective_rate_asymptote(self, model):
        rate = model.effective_rate(10**6, 10**6)
        assert rate == pytest.approx(model.peak_gcups * 1e9, rel=1e-2)

    def test_effective_rate_monotone_in_height(self, model):
        rates = [model.effective_rate(10**6, r) for r in (4, 64, 1024, 16384)]
        assert rates == sorted(rates)

    def test_effective_rate_monotone_in_width(self, model):
        rates = [model.effective_rate(w, 4096) for w in (512, 2048, 8192, 10**6)]
        assert rates == sorted(rates)

    def test_calibrated_matches_rating(self):
        sm = calibrated(50.7, sm_count=8)
        assert sm.peak_gcups == pytest.approx(50.7)

    @pytest.mark.parametrize("kwargs", [
        dict(sm_count=0), dict(per_sm_gcups=0), dict(min_block_cols=0),
        dict(rows_per_step=0),
    ])
    def test_validation(self, kwargs):
        base = dict(sm_count=8, per_sm_gcups=1.0)
        base.update(kwargs)
        with pytest.raises(DeviceError):
            SMModel(**base)

    def test_bad_width(self, model):
        with pytest.raises(DeviceError):
            model.concurrent_blocks(0)
        with pytest.raises(DeviceError):
            model.pipeline_efficiency(0, 2)


class TestSpecIntegration:
    def test_spec_uses_model_when_block_rows_known(self, model):
        dev = replace(GTX_680, sm_model=model)
        with_model = dev.effective_rate(10**6, 4096)
        coarse = dev.effective_rate(10**6)  # no block height: coarse curve
        assert with_model == pytest.approx(model.effective_rate(10**6, 4096))
        assert coarse != with_model

    def test_chain_score_unaffected_by_timing_model(self, model, rng):
        """The SM model changes time, never results."""
        a = random_codes(rng, 80)
        b = random_codes(rng, 120)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        dev = replace(GTX_680, sm_model=model)
        chain = MultiGpuChain((dev, dev), config=ChainConfig(block_rows=16))
        res = chain.run(MatrixWorkload(a, b, DNA_DEFAULT))
        assert res.score == want

    def test_chain_time_responds_to_model(self, model):
        from repro.multigpu import PhantomWorkload
        dev = replace(GTX_680, sm_model=model)
        chain_short = MultiGpuChain([dev], config=ChainConfig(block_rows=32))
        chain_tall = MultiGpuChain([dev], config=ChainConfig(block_rows=8192))
        t_short = chain_short.run(PhantomWorkload(100_000, 100_000)).total_time_s
        t_tall = chain_tall.run(PhantomWorkload(100_000, 100_000)).total_time_s
        assert t_short > t_tall  # short diagonals pay internal fill
