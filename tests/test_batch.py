"""Unit tests: repro.multigpu.batch (campaign runner)."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, TESLA_M2090, homogeneous
from repro.errors import ConfigError
from repro.multigpu import ChainConfig, run_campaign_chained, run_campaign_split
from repro.workloads import ChromosomePair

#: Small synthetic pairs so campaigns run in milliseconds.
PAIRS = (
    ChromosomePair("p1", "h1", "c1", 4_000_000, 4_000_000),
    ChromosomePair("p2", "h2", "c2", 6_000_000, 5_000_000),
    ChromosomePair("p3", "h3", "c3", 3_000_000, 7_000_000),
)
CFG = ChainConfig(block_rows=4096, channel_capacity=8)


class TestChained:
    def test_sequential_timeline(self):
        res = run_campaign_chained(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        assert res.strategy == "chained"
        assert len(res.items) == 3
        # back-to-back: each item starts when the previous ends
        for prev, item in zip(res.items, res.items[1:]):
            assert item.start_s == pytest.approx(prev.end_s)
        assert res.makespan_s == pytest.approx(res.items[-1].end_s)

    def test_each_pair_gets_aggregate_rate(self):
        res = run_campaign_chained(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        aggregate = sum(d.gcups for d in ENV1_HETEROGENEOUS)
        for item in res.items:
            assert item.gcups > 0.9 * aggregate

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            run_campaign_chained([], ENV1_HETEROGENEOUS)


class TestSplit:
    def test_items_cover_all_pairs(self):
        res = run_campaign_split(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        assert sorted(i.pair.name for i in res.items) == ["p1", "p2", "p3"]
        assert res.makespan_s >= max(i.duration_s for i in res.items) - 1e-9

    def test_single_pair_gcups_bounded_by_one_device(self):
        res = run_campaign_split(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        fastest = max(d.gcups for d in ENV1_HETEROGENEOUS)
        for item in res.items:
            assert item.gcups <= fastest * 1.01

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            run_campaign_split([], ENV1_HETEROGENEOUS)
        with pytest.raises(ConfigError):
            run_campaign_split(PAIRS, [])


class TestStrategyComparison:
    def test_chained_wins_latency(self):
        """The paper's strategy completes individual comparisons sooner."""
        chained = run_campaign_chained(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        split = run_campaign_split(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        assert chained.mean_latency_s < split.mean_latency_s

    def test_chained_wins_makespan_on_heterogeneous(self):
        """With heterogeneous devices and unequal pairs, per-pair placement
        strands slow devices; the chain keeps them all busy."""
        chained = run_campaign_chained(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        split = run_campaign_split(PAIRS, ENV1_HETEROGENEOUS, config=CFG)
        assert chained.makespan_s < split.makespan_s

    def test_split_competitive_on_homogeneous_balanced(self):
        """Sanity for the other direction: equal pairs on equal devices
        make split scheduling near-perfect (aggregate rates comparable)."""
        pairs = tuple(ChromosomePair(f"q{i}", "h", "c", 4_000_000, 4_000_000)
                      for i in range(4))
        devices = homogeneous(TESLA_M2090, 4)
        chained = run_campaign_chained(pairs, devices, config=CFG)
        split = run_campaign_split(pairs, devices, config=CFG)
        assert split.aggregate_gcups == pytest.approx(chained.aggregate_gcups, rel=0.1)
