"""Scoreboard tests: monotonic publish, cross-process reads, failure injection.

The shared-memory scoreboard is the piece of distributed pruning that can
actually go wrong operationally — every *correctness* property (stale
reads prune less, never wrongly) is covered by the cross-engine
differential suite, so this file concentrates on the scoreboard contract
itself: monotonic compare-and-raise, slot isolation, spawn-safe pickling,
segment hygiene, and the lock-free claim that a worker dying mid-publish
cannot wedge any reader.
"""

from __future__ import annotations

import glob
import os
import signal
import time

import pytest

from repro.comm.scoreboard import (
    SCOREBOARD_NAME_PREFIX,
    LocalScoreboard,
    SharedScoreboard,
)
from repro.errors import CommError
from repro.multigpu.procchain import pick_context


def _shm_segments() -> set[str]:
    return set(glob.glob(f"/dev/shm/{SCOREBOARD_NAME_PREFIX}*"))


class TestLocalScoreboard:
    def test_monotonic_compare_and_raise(self):
        board = LocalScoreboard()
        assert board.read() == 0
        board.publish(0, 7)
        assert board.read() == 7
        board.publish(3, 4)  # lower: ignored (slot is irrelevant locally)
        assert board.read() == 7
        board.publish(1, 11)
        assert board.read() == 11

    def test_reset(self):
        board = LocalScoreboard()
        board.publish(0, 9)
        board.reset()
        assert board.read() == 0


class TestSharedScoreboard:
    def test_read_is_max_over_slots(self):
        with SharedScoreboard(3) as board:
            board.publish(0, 5)
            board.publish(1, 12)
            board.publish(2, 3)
            assert board.read() == 12
            board.publish(1, 2)  # lower publish never lowers the slot
            assert board.read() == 12

    def test_reset_and_bad_slot(self):
        with SharedScoreboard(2) as board:
            board.publish(1, 40)
            board.reset()
            assert board.read() == 0
            with pytest.raises(CommError):
                board.publish(2, 1)
            with pytest.raises(CommError):
                board.publish(-1, 1)

    def test_needs_a_slot(self):
        with pytest.raises(CommError):
            SharedScoreboard(0)

    def test_unlink_removes_segment(self):
        before = _shm_segments()
        board = SharedScoreboard(2)
        assert _shm_segments() - before  # segment exists while owned
        board.unlink()
        assert _shm_segments() == before
        board.unlink()  # idempotent

    def test_spawn_safe_pickling(self):
        """A child attached via pickle publishes; the parent reads it."""
        ctx = pick_context()
        with SharedScoreboard(2) as board:

            proc = ctx.Process(target=_publish_and_exit, args=(board, 1, 77))
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == 0
            assert board.read() == 77


def _publish_and_exit(board: SharedScoreboard, slot: int, score: int) -> None:
    board.publish(slot, score)
    board.close()


def _publish_forever(board: SharedScoreboard, slot: int, started) -> None:
    score = 1
    while True:
        board.publish(slot, score)
        score += 1
        started.set()


class TestFailureInjection:
    def test_writer_death_mid_publish_does_not_wedge_readers(self):
        """SIGKILL a publisher in its hot loop; reads keep working.

        The lock-free design means there is nothing a dying writer can
        hold: the surviving reader sees the last fully-stored value (an
        aligned int64 store — no torn reads) and never blocks.
        """
        ctx = pick_context()
        with SharedScoreboard(2) as board:
            started = ctx.Event()
            proc = ctx.Process(target=_publish_forever, args=(board, 0, started))
            proc.start()
            assert started.wait(timeout=30), "publisher never started"
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=30)
            assert proc.exitcode == -signal.SIGKILL

            # Reads after the death are non-blocking and monotone-sane.
            deadline = time.monotonic() + 5
            last = board.read()
            assert last >= 1
            while time.monotonic() < deadline:
                now = board.read()
                assert now == last  # nobody writes anymore; value is stable
            # The survivor's slot still works.
            board.publish(1, last + 100)
            assert board.read() == last + 100

    def test_no_segment_leak_after_death(self):
        before = _shm_segments()
        ctx = pick_context()
        board = SharedScoreboard(1)
        started = ctx.Event()
        proc = ctx.Process(target=_publish_forever, args=(board, 0, started))
        proc.start()
        assert started.wait(timeout=30)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30)
        board.unlink()
        assert _shm_segments() == before
