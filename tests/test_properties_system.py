"""Property-based tests on the system layers (chain, checkpoint, comm)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import DeviceSpec, Engine
from repro.device.engine import Semaphore
from repro.multigpu import (
    ChainConfig,
    MatrixWorkload,
    MultiGpuChain,
    PhantomWorkload,
    proportional_partition,
    predict_chain,
)
from repro.seq import DNA_DEFAULT, encode
from repro.sw import sw_score_naive

dna_pair = st.tuples(
    st.text(alphabet="ACGT", min_size=4, max_size=60).map(encode),
    st.text(alphabet="ACGT", min_size=8, max_size=80).map(encode),
)

chain_configs = st.builds(
    ChainConfig,
    block_rows=st.integers(1, 24),
    channel_capacity=st.integers(1, 6),
    device_slots=st.integers(1, 3),
    async_transfers=st.booleans(),
)

device_sets = st.lists(
    st.builds(
        DeviceSpec,
        name=st.just("hyp"),
        gcups=st.floats(1.0, 100.0),
        pcie_gbps=st.floats(0.5, 16.0),
        pcie_latency_s=st.floats(0.0, 1e-4),
        saturation_cols=st.integers(0, 4096),
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=30, deadline=None)
@given(dna_pair, chain_configs, device_sets)
def test_chain_score_invariant_under_any_configuration(pair, config, devices):
    """THE invariant of the reproduction: no device mix, block size, buffer
    capacity, or transfer mode may change the exact score."""
    a, b = pair
    if b.size < len(devices):  # partition needs >= 1 column per device
        return
    want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
    chain = MultiGpuChain(devices, config=config)
    res = chain.run(MatrixWorkload(a, b, DNA_DEFAULT))
    assert res.score == want


@settings(max_examples=25, deadline=None)
@given(dna_pair, chain_configs, device_sets, st.integers(1, 50))
def test_checkpoint_split_point_invariance(pair, config, devices, stop):
    """Splitting a run at ANY row and resuming yields the same score."""
    a, b = pair
    if b.size < len(devices):
        return
    stop = min(stop, a.size - 1)
    if stop < 1:
        return
    want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
    chain = MultiGpuChain(devices, config=config)
    wl = MatrixWorkload(a, b, DNA_DEFAULT)
    seg = chain.run(wl, stop_row=stop)
    if seg.checkpoint is None:  # stop row rounded past the end
        assert seg.score == want
        return
    res = chain.run(wl, resume=seg.checkpoint)
    assert res.score == want


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 8), st.integers(100_000, 3_000_000), device_sets)
def test_phantom_time_matches_prediction_when_compute_bound(block_k, cols, devices):
    """For wide compute-bound chains the analytic model tracks the event
    simulation within 10%."""
    if cols < len(devices):
        return
    config = ChainConfig(block_rows=1024 * block_k, channel_capacity=8)
    rows = 4 * config.block_rows
    chain = MultiGpuChain(devices, config=config)
    res = chain.run(PhantomWorkload(rows, cols))
    slabs = proportional_partition(cols, [d.gcups for d in devices])
    pred = predict_chain(devices, slabs, rows, config)
    assert res.total_time_s <= pred.total_s * 1.10
    assert res.total_time_s >= pred.total_s * 0.55  # prediction is an upper-ish bound


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 5), st.lists(st.integers(0, 2), max_size=40))
def test_semaphore_never_exceeds_capacity(capacity, ops):
    """Model-check the semaphore against a counter under random
    acquire/release interleavings driven through the engine."""
    eng = Engine()
    sem = Semaphore(eng, capacity, "hyp")
    held = 0
    max_held = 0
    violations = []

    def actor(op):
        nonlocal held, max_held
        if op == 0:
            yield sem.acquire()
            held += 1
            max_held = max(max_held, held)
            if held > capacity:
                violations.append(held)
            yield eng.timeout(1.0)
            held -= 1
            sem.release()
        else:
            yield eng.timeout(0.5)

    for op in ops:
        eng.process(actor(op))
    eng.run()
    assert not violations
    assert max_held <= capacity


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_ring_chain_conservation(data):
    """Segments pushed through a channel chain arrive exactly once, in
    order, regardless of buffer capacities and consumer pacing."""
    from repro.comm import BorderChannel, BorderSegment
    from repro.device import SimulatedGPU

    n_seg = data.draw(st.integers(1, 20))
    cap = data.draw(st.integers(1, 4))
    slots = data.draw(st.integers(1, 3))
    pace = data.draw(st.floats(0.0, 2.0))

    eng = Engine()
    spec = DeviceSpec("x", gcups=1.0, pcie_gbps=1.0, pcie_latency_s=0.0)
    src, dst = SimulatedGPU(eng, spec, 0), SimulatedGPU(eng, spec, 1)
    ch = BorderChannel(eng, src, dst, capacity=cap, device_slots=slots)
    got = []

    def producer():
        for i in range(n_seg):
            yield ch.reserve_out_slot()
            eng.process(ch.sender(BorderSegment(index=i, nbytes=64)))

    def consumer():
        for _ in range(n_seg):
            if pace > 0:
                yield eng.timeout(pace)
            seg = yield ch.consume()
            got.append(seg.index)

    eng.process(producer())
    eng.process(consumer())
    eng.process(ch.receiver_pump(n_seg))
    eng.run()
    assert got == list(range(n_seg))
