"""Unit tests: repro.perf.metrics."""

from __future__ import annotations

import pytest

from repro.perf import (
    efficiency,
    format_table,
    gcups,
    humanize_cells,
    humanize_time,
    speedup,
)


class TestRates:
    def test_gcups(self):
        assert gcups(2_000_000_000, 1.0) == pytest.approx(2.0)
        assert gcups(10**12, 10.0) == pytest.approx(100.0)

    def test_gcups_rejects_zero_time(self):
        with pytest.raises(ValueError):
            gcups(10, 0.0)

    def test_speedup_and_efficiency(self):
        assert speedup(10.0, 2.5) == pytest.approx(4.0)
        assert efficiency(4.0, 4) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 0)


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", "1"], ["longer", "22"]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_humanize_cells(self):
        assert humanize_cells(1_230_000_000_000) == "1.23 Tcells"
        assert humanize_cells(5_000_000) == "5.00 Mcells"
        assert humanize_cells(12) == "12 cells"
        with pytest.raises(ValueError):
            humanize_cells(-1)

    def test_humanize_time(self):
        assert humanize_time(0.0123) == "12.3 ms"
        assert humanize_time(65) == "1:05"
        assert humanize_time(3700) == "1:01:40"
        with pytest.raises(ValueError):
            humanize_time(-1)
