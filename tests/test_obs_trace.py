"""Tests: Chrome trace export + wall-clock spans from real processes.

The second half is the cross-process recorder suite: spans recorded by
:class:`~repro.device.trace.WallClockRecorder` in genuinely spawned
worker processes, all against ONE origin sampled in the parent, must
merge into a single coherent :class:`~repro.device.trace.Tracer` — the
overlap/concurrency queries and the Chrome exporter have to work on the
result exactly as they do for simulated runs.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

from repro.device.trace import (
    KINDS,
    Tracer,
    WallClockRecorder,
    merge_wall_records,
    render_gantt,
)
from repro.errors import ObsError
from repro.obs import (
    KIND_COLOURS,
    load_chrome_trace,
    tracer_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)


def _span_worker(actor: str, origin: float, kinds: list, out_queue) -> None:
    """Record one span per kind against the parent's shared origin."""
    recorder = WallClockRecorder(origin)
    for kind in kinds:
        with recorder.span(kind):
            time.sleep(0.02)
    out_queue.put((actor, recorder.records))


class TestChromeExport:
    def _tracer(self) -> Tracer:
        t = Tracer()
        t.record("gpu0", "compute", 0.0, 1.0)
        t.record("gpu0", "d2h", 1.0, 1.25)
        t.record("gpu1", "wait", 0.0, 1.25)
        t.record("gpu1", "pruned", 1.25, 1.25)
        return t

    def test_one_track_per_actor_with_names_and_order(self):
        doc = tracer_to_chrome(self._tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"]: e["tid"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"gpu0": 1, "gpu1": 2}
        sort = {e["tid"]: e["args"]["sort_index"] for e in meta
                if e["name"] == "thread_sort_index"}
        assert sort == {1: 1, 2: 2}
        assert any(e["name"] == "process_name" and e["args"]["name"] == "mgsw"
                   for e in meta)

    def test_intervals_become_microsecond_complete_events(self):
        doc = tracer_to_chrome(self._tracer())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 4
        compute = next(e for e in xs if e["name"] == "compute")
        assert compute["ts"] == 0.0
        assert compute["dur"] == pytest.approx(1e6)
        d2h = next(e for e in xs if e["name"] == "d2h")
        assert d2h["ts"] == pytest.approx(1e6)
        assert d2h["dur"] == pytest.approx(0.25e6)

    def test_every_kind_has_a_colour(self):
        assert set(KIND_COLOURS) == set(KINDS)
        doc = tracer_to_chrome(self._tracer())
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                assert e["cname"] == KIND_COLOURS[e["name"]]

    def test_other_data_carries_clamp_count(self):
        t = self._tracer()
        t.clamped_records = 3
        doc = tracer_to_chrome(t)
        assert doc["otherData"]["clamped_records"] == 3
        assert doc["otherData"]["actors"] == ["gpu0", "gpu1"]

    def test_validate_accepts_own_output(self):
        validate_chrome_trace(tracer_to_chrome(self._tracer()))

    def test_validate_rejects_array_form(self):
        with pytest.raises(ObsError):
            validate_chrome_trace([{"ph": "X"}])

    def test_validate_rejects_negative_duration(self):
        doc = tracer_to_chrome(self._tracer())
        doc["traceEvents"][-1] = {"ph": "X", "pid": 1, "tid": 1,
                                  "name": "compute", "ts": 0, "dur": -1}
        with pytest.raises(ObsError, match="dur"):
            validate_chrome_trace(doc)

    def test_validate_rejects_missing_phase(self):
        with pytest.raises(ObsError, match="ph"):
            validate_chrome_trace({"traceEvents": [{"pid": 1, "tid": 1}]})

    def test_write_load_roundtrip(self, tmp_path):
        doc = tracer_to_chrome(self._tracer())
        path = write_chrome_trace(tmp_path / "trace.json", self._tracer())
        assert load_chrome_trace(path) == doc

    def test_write_accepts_prebuilt_document(self, tmp_path):
        doc = tracer_to_chrome(self._tracer())
        path = write_chrome_trace(tmp_path / "trace.json", doc)
        assert load_chrome_trace(path) == doc


class TestWallRecordsAcrossProcesses:
    """The satellite suite: real spawned processes, one shared origin."""

    def _collect(self, ctx, plans: dict[str, list]) -> Tracer:
        origin = time.perf_counter()
        queue = ctx.Queue()
        procs = [ctx.Process(target=_span_worker,
                             args=(actor, origin, kinds, queue))
                 for actor, kinds in plans.items()]
        for p in procs:
            p.start()
        # Queue messages arrive in completion order, not plans order, so
        # each worker ships its own actor name alongside its records.
        records = [queue.get(timeout=60.0) for _ in procs]
        for p in procs:
            p.join(timeout=30.0)
            assert p.exitcode == 0
        tracer = Tracer()
        for actor, recs in sorted(records):
            merge_wall_records(tracer, actor, recs)
        return tracer

    def test_spawned_processes_share_one_time_base(self):
        """Spans from different spawned processes land on one coherent
        timeline: all positive, all while the parent was waiting."""
        ctx = mp.get_context("spawn")
        t0 = time.perf_counter()
        tracer = self._collect(ctx, {"w0": ["compute", "d2h"],
                                     "w1": ["wait", "compute"]})
        elapsed = time.perf_counter() - t0
        assert tracer.actors() == ["w0", "w1"]
        for iv in tracer.intervals:
            assert 0.0 <= iv.start <= iv.end <= elapsed
        assert tracer.total("w0", "compute") >= 0.02
        assert tracer.total("w1", "wait") >= 0.02
        assert tracer.clamped_records == 0

    def test_overlap_query_on_concurrent_workers(self):
        """Two workers sleeping 20ms+ simultaneously must show real overlap
        between one's compute and the other's wait."""
        ctx = mp.get_context("spawn")
        tracer = self._collect(ctx, {"w0": ["compute"] * 5,
                                     "w1": ["wait"] * 5})
        # Both ran ~100ms concurrently; demand a loose quarter of it.
        assert tracer.overlap("w0", "compute", "w1", "wait") > 0.025
        profile = tracer.concurrency_profile("compute")
        assert profile  # w0's spans show up in the step function

    def test_exporter_roundtrip_from_process_records(self, tmp_path):
        ctx = mp.get_context("spawn")
        tracer = self._collect(ctx, {"w0": ["compute"], "w1": ["compute"]})
        path = write_chrome_trace(tmp_path / "trace.json", tracer)
        doc = load_chrome_trace(path)
        validate_chrome_trace(doc)
        assert doc["otherData"]["actors"] == ["w0", "w1"]
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tracer.intervals)
        assert render_gantt(tracer)  # and the ASCII view still renders

    def test_fork_context_matches(self):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("no fork on this platform")
        tracer = self._collect(mp.get_context("fork"), {"w0": ["compute"]})
        assert tracer.total("w0", "compute") >= 0.02


class TestClampCounting:
    def test_clamped_records_counted_and_accumulated(self):
        tracer = Tracer()
        clamped = merge_wall_records(tracer, "w", [
            ("compute", -0.01, 0.5),   # starts before the origin
            ("compute", 0.5, 0.4),     # ends before it starts
            ("compute", 0.6, 0.7),     # fine
        ])
        assert clamped == 2
        assert tracer.clamped_records == 2
        merge_wall_records(tracer, "w", [("wait", -0.001, 0.1)])
        assert tracer.clamped_records == 3
        # Clamped spans are still legal intervals.
        for iv in tracer.intervals:
            assert iv.start >= 0.0 and iv.end >= iv.start

    def test_clean_merge_counts_zero(self):
        tracer = Tracer()
        assert merge_wall_records(tracer, "w", [("compute", 0.0, 1.0)]) == 0
        assert tracer.clamped_records == 0


class TestGanttTieBreak:
    def test_equal_durations_pick_fixed_kind_priority(self):
        """On an exact duration tie within a bucket the earlier kind in
        KINDS wins (compute > transfers > wait), whatever the recording
        order — charts are deterministic."""
        for order in (("compute", "wait"), ("wait", "compute")):
            t = Tracer()
            for kind in order:
                t.record("a", kind, 0.0, 1.0)
            chart = render_gantt(t, width=10)
            row = chart.splitlines()[0]
            assert "#" in row and "." not in row

    def test_d2h_beats_h2d_on_tie(self):
        t = Tracer()
        t.record("a", "h2d", 0.0, 1.0)
        t.record("a", "d2h", 0.0, 1.0)
        row = render_gantt(t, width=10).splitlines()[0]
        assert ">" in row and "<" not in row
