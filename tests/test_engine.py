"""Unit tests: repro.device.engine — the discrete-event core."""

from __future__ import annotations

import pytest

from repro.device.engine import Engine, Semaphore
from repro.errors import DeadlockError, SimulationError


class TestTimeAdvance:
    def test_timeouts_fire_in_order(self):
        eng = Engine()
        fired = []

        def proc(delay, tag):
            yield eng.timeout(delay)
            fired.append((eng.now, tag))

        eng.process(proc(3.0, "c"))
        eng.process(proc(1.0, "a"))
        eng.process(proc(2.0, "b"))
        eng.run()
        assert fired == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_same_time_fifo(self):
        eng = Engine()
        fired = []

        def proc(tag):
            yield eng.timeout(1.0)
            fired.append(tag)

        for tag in "abc":
            eng.process(proc(tag))
        eng.run()
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    def test_run_until_stops_early(self):
        eng = Engine()

        def proc():
            yield eng.timeout(10.0)

        eng.process(proc())
        assert eng.run(until=5.0) == 5.0
        assert eng.now == 5.0


class TestProcesses:
    def test_return_value_propagates(self):
        eng = Engine()

        def child():
            yield eng.timeout(1.0)
            return 42

        results = []

        def parent():
            value = yield eng.process(child())
            results.append(value)

        eng.process(parent())
        eng.run()
        assert results == [42]

    def test_waiting_on_finished_process(self):
        eng = Engine()

        def fast():
            yield eng.timeout(0.5)
            return "done"

        fast_proc = eng.process(fast())
        got = []

        def late():
            yield eng.timeout(5.0)
            value = yield fast_proc  # already finished
            got.append((eng.now, value))

        eng.process(late())
        eng.run()
        assert got == [(5.0, "done")]

    def test_subgenerator_delegation(self):
        eng = Engine()

        def inner():
            yield eng.timeout(2.0)
            return "inner-value"

        log = []

        def outer():
            value = yield from inner()
            log.append((eng.now, value))

        eng.process(outer())
        eng.run()
        assert log == [(2.0, "inner-value")]

    def test_crash_surfaces_as_simulation_error(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1.0)
            raise ValueError("boom")

        eng.process(bad(), "bad-proc")
        with pytest.raises(SimulationError, match="bad-proc"):
            eng.run()

    def test_yielding_non_event_rejected(self):
        eng = Engine()

        def bad():
            yield 42  # type: ignore[misc]

        eng.process(bad(), "weird")
        with pytest.raises(SimulationError):
            eng.run()


class TestEventsAndAllOf:
    def test_event_value(self):
        eng = Engine()
        evt = eng.event("sig")
        got = []

        def waiter():
            got.append((yield evt))

        def signaller():
            yield eng.timeout(3.0)
            evt.succeed("payload")

        eng.process(waiter())
        eng.process(signaller())
        eng.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self):
        eng = Engine()
        evt = eng.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_all_of(self):
        eng = Engine()

        def child(d):
            yield eng.timeout(d)
            return d

        procs = [eng.process(child(d)) for d in (3.0, 1.0, 2.0)]
        got = []

        def parent():
            values = yield eng.all_of(procs)
            got.append((eng.now, values))

        eng.process(parent())
        eng.run()
        assert got == [(3.0, [3.0, 1.0, 2.0])]

    def test_all_of_empty(self):
        eng = Engine()
        got = []

        def parent():
            values = yield eng.all_of([])
            got.append(values)

        eng.process(parent())
        eng.run()
        assert got == [[]]

    def test_event_failure_propagates(self):
        eng = Engine()
        evt = eng.event()
        caught = []

        def waiter():
            try:
                yield evt
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield eng.timeout(1.0)
            evt.fail(RuntimeError("nope"))

        eng.process(waiter())
        eng.process(failer())
        eng.run()
        assert caught == ["nope"]


class TestDeadlock:
    def test_deadlock_detected_with_names(self):
        eng = Engine()

        def stuck():
            yield eng.event("never-fires")

        eng.process(stuck(), "stuck-1")
        with pytest.raises(DeadlockError, match="stuck-1"):
            eng.run()

    def test_clean_completion_no_deadlock(self):
        eng = Engine()

        def ok():
            yield eng.timeout(1.0)

        eng.process(ok())
        assert eng.run() == 1.0


class TestSemaphore:
    def test_capacity_enforced(self):
        eng = Engine()
        sem = Semaphore(eng, 2, "s")
        order = []

        def worker(tag):
            yield sem.acquire()
            order.append(("in", tag, eng.now))
            yield eng.timeout(1.0)
            sem.release()
            order.append(("out", tag, eng.now))

        for tag in "abc":
            eng.process(worker(tag))
        eng.run()
        ins = [o for o in order if o[0] == "in"]
        assert ins[0][2] == 0.0 and ins[1][2] == 0.0
        assert ins[2][2] == 1.0  # third waits for a release

    def test_release_beyond_capacity_rejected(self):
        eng = Engine()
        sem = Semaphore(eng, 1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_zero_capacity_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            Semaphore(eng, 0)

    def test_fifo_wakeup(self):
        eng = Engine()
        sem = Semaphore(eng, 1)
        order = []

        def worker(tag, start):
            yield eng.timeout(start)
            yield sem.acquire()
            order.append(tag)
            yield eng.timeout(10.0)
            sem.release()

        eng.process(worker("first", 0.0))
        eng.process(worker("second", 1.0))
        eng.process(worker("third", 2.0))
        eng.run()
        assert order == ["first", "second", "third"]
