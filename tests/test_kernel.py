"""Unit tests: repro.sw.kernel (the vectorised Gotoh sweep) vs the oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, encode
from repro.sw import kernel, naive
from repro.sw.constants import DTYPE, NEG_INF

from helpers import random_codes, random_scoring


class TestLocalVsOracle:
    def test_randomised_equivalence(self, rng):
        for _ in range(60):
            m = int(rng.integers(1, 35))
            n = int(rng.integers(1, 35))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            want, wi, wj = naive.sw_score_naive(a, b, sc)
            got = kernel.sw_score(a, b, sc)
            got_score = got.score if got.row >= 0 else 0
            assert got_score == want
            if want > 0:
                assert (got.row, got.col) == (wi, wj)

    def test_identical_sequences(self):
        a = encode("ACGTACGTAC")
        best = kernel.sw_score(a, a, DNA_DEFAULT)
        assert best.score == 10 * DNA_DEFAULT.match
        assert (best.row, best.col) == (9, 9)

    def test_disjoint_alphabets_score_zero(self):
        a = encode("AAAA")
        b = encode("TTTT")
        best = kernel.sw_score(a, b, DNA_DEFAULT)
        assert best.row == -1  # empty alignment sentinel

    def test_known_small_alignment(self):
        # One mismatch inside a run of matches.
        a = encode("AAACAAA")
        b = encode("AAAGAAA")
        best = kernel.sw_score(a, b, DNA_DEFAULT)
        # 7 columns: 6 matches + 1 mismatch = 6 - 3 = 3, or 3 matches = 3.
        assert best.score == 3

    def test_gap_inside_flanked_matches(self):
        # Long unique flanks force the indel through the alignment: with a
        # cheap-enough gap the optimum is all-matches minus one gap_first.
        cheap = DNA_DEFAULT
        from repro.seq import Scoring
        cheap = Scoring(match=1, mismatch=-10, gap_open=1, gap_extend=1)
        a = encode("CCGCATAGTTTTTTTTGACGTACG")
        b = encode("CCGCATAGTTTTTTTGACGTACG")  # one T deleted
        want, *_ = naive.sw_score_naive(a, b, cheap)
        got = kernel.sw_score(a, b, cheap)
        assert got.score == want == 23 - cheap.gap_first


class TestGlobalMode:
    def test_randomised_equivalence(self, rng):
        for _ in range(40):
            m = int(rng.integers(1, 25))
            n = int(rng.integers(1, 25))
            a = random_codes(rng, m)
            b = random_codes(rng, n)
            sc = random_scoring(rng)
            mats = naive.full_matrices(a, b, sc, local=False)
            ht, ft, hl, el, c = kernel.global_boundaries(m, n, sc)
            res = kernel.sweep_block(
                a, kernel.build_profile(b, sc), ht, ft, hl, el, c, sc, local=False
            )
            assert int(res.h_bottom[-1]) == mats.score

    def test_full_rows_match_oracle(self, rng):
        a = random_codes(rng, 12)
        b = random_codes(rng, 15)
        sc = DNA_DEFAULT
        mats = naive.full_matrices(a, b, sc, local=False)
        ht, ft, hl, el, c = kernel.global_boundaries(12, 15, sc)
        res = kernel.sweep_block(
            a, kernel.build_profile(b, sc), ht, ft, hl, el, c, sc, local=False
        )
        assert np.array_equal(res.h_bottom, mats.H[-1, 1:])
        assert np.array_equal(res.f_bottom, mats.F[-1, 1:])
        assert np.array_equal(res.h_right, mats.H[1:, -1])
        assert np.array_equal(res.e_right, mats.E[1:, -1])


class TestRowSink:
    def test_sink_rows_match_oracle(self, rng):
        a = random_codes(rng, 10)
        b = random_codes(rng, 9)
        sc = DNA_DEFAULT
        mats = naive.full_matrices(a, b, sc, local=True)
        seen = {}

        def sink(i, h, e, f):
            seen[i] = (h.copy(), e.copy(), f.copy())

        ht = np.zeros(9, dtype=DTYPE)
        ft = np.full(9, NEG_INF, dtype=DTYPE)
        hl = np.zeros(10, dtype=DTYPE)
        el = np.full(10, NEG_INF, dtype=DTYPE)
        kernel.sweep_block(a, kernel.build_profile(b, sc), ht, ft, hl, el, 0, sc,
                           local=True, row_sink=sink, sink_interval=3)
        assert sorted(seen) == [2, 5, 8]
        for i, (h, e, f) in seen.items():
            assert np.array_equal(h, mats.H[i + 1, 1:])
            assert np.array_equal(e, mats.E[i + 1, 1:])
            assert np.array_equal(f, mats.F[i + 1, 1:])

    def test_sink_without_interval_rejected(self, rng):
        a = random_codes(rng, 4)
        b = random_codes(rng, 4)
        with pytest.raises(ConfigError):
            kernel.sw_score(a, b, DNA_DEFAULT, row_sink=lambda *args: None, sink_interval=0)


class TestBlockChaining:
    def test_two_horizontal_blocks_equal_one(self, rng):
        """Splitting columns and feeding (h_right, e_right) across the seam
        reproduces the monolithic sweep — the multi-GPU border contract."""
        a = random_codes(rng, 20)
        b = random_codes(rng, 30)
        sc = DNA_DEFAULT
        whole = kernel.sw_score(a, b, sc)

        split = 13
        prof = kernel.build_profile(b, sc)
        ht, ft, hl, el, c = kernel.local_boundaries(20, 30)
        left = kernel.sweep_block(a, prof[:, :split], ht[:split], ft[:split],
                                  hl, el, c, sc, local=True)
        right = kernel.sweep_block(a, prof[:, split:], ht[split:], ft[split:],
                                   left.h_right, left.e_right, 0, sc, local=True)
        best = left.best if left.best.better_than(right.best.shifted(0, split)) \
            else right.best.shifted(0, split)
        assert best.score == (whole.score if whole.row >= 0 else 0)

    def test_two_vertical_blocks_equal_one(self, rng):
        a = random_codes(rng, 24)
        b = random_codes(rng, 18)
        sc = DNA_DEFAULT
        whole = kernel.sw_score(a, b, sc)

        split = 11
        prof = kernel.build_profile(b, sc)
        ht, ft, hl, el, c = kernel.local_boundaries(24, 18)
        top = kernel.sweep_block(a[:split], prof, ht, ft, hl[:split], el[:split],
                                 c, sc, local=True)
        bottom = kernel.sweep_block(a[split:], prof, top.h_bottom, top.f_bottom,
                                    hl[split:], el[split:], 0, sc, local=True)
        best = top.best if top.best.better_than(bottom.best.shifted(split, 0)) \
            else bottom.best.shifted(split, 0)
        assert best.score == (whole.score if whole.row >= 0 else 0)


class TestValidation:
    def test_empty_block_rejected(self):
        with pytest.raises(ConfigError):
            kernel.sw_score(np.array([], dtype=np.uint8), encode("AC"), DNA_DEFAULT)

    def test_wrong_boundary_shapes_rejected(self, rng):
        a = random_codes(rng, 5)
        b = random_codes(rng, 5)
        sc = DNA_DEFAULT
        prof = kernel.build_profile(b, sc)
        bad = np.zeros(3, dtype=DTYPE)
        good5 = np.zeros(5, dtype=DTYPE)
        with pytest.raises(ConfigError):
            kernel.sweep_block(a, prof, bad, good5, good5, good5, 0, sc)
        with pytest.raises(ConfigError):
            kernel.sweep_block(a, prof, good5, good5, bad, good5, 0, sc)


class TestBestCell:
    def test_tie_break_row_major(self):
        early = kernel.BestCell(5, 1, 2)
        later = kernel.BestCell(5, 2, 0)
        assert early.better_than(later)
        assert not later.better_than(early)

    def test_score_dominates(self):
        assert kernel.BestCell(6, 9, 9).better_than(kernel.BestCell(5, 0, 0))

    def test_none_never_better(self):
        assert not kernel.BestCell.none().better_than(kernel.BestCell(1, 0, 0))
        assert kernel.BestCell(1, 0, 0).better_than(kernel.BestCell.none())

    def test_shifted(self):
        assert kernel.BestCell(3, 1, 2).shifted(10, 20) == kernel.BestCell(3, 11, 22)
        assert kernel.BestCell.none().shifted(10, 20) == kernel.BestCell.none()
