"""Unit tests: repro.seq.twobit (.mg2b persistent format)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import encode, load_2bit, save_2bit
from repro.workloads import chromosome_like


class TestRoundtrip:
    def test_simple(self, tmp_path):
        codes = encode("ACGTNACGTNNACG")
        path = tmp_path / "x.mg2b"
        save_2bit(path, codes)
        assert np.array_equal(load_2bit(path), codes)

    @pytest.mark.parametrize("length", [0, 1, 3, 4, 5, 7, 8, 9, 1000])
    def test_all_alignment_boundaries(self, tmp_path, length, rng):
        codes = rng.integers(0, 5, length).astype(np.uint8)
        path = tmp_path / f"len{length}.mg2b"
        save_2bit(path, codes)
        assert np.array_equal(load_2bit(path), codes)

    def test_chromosome_like(self, tmp_path, rng):
        codes = chromosome_like(50_000, rng=rng)
        path = tmp_path / "chr.mg2b"
        nbytes = save_2bit(path, codes)
        assert np.array_equal(load_2bit(path), codes)
        # ~4x denser than one byte per base (plus bitmap + header).
        assert nbytes < codes.size * 0.4

    def test_compression_ratio(self, tmp_path, rng):
        codes = rng.integers(0, 4, 100_000).astype(np.uint8)
        path = tmp_path / "big.mg2b"
        nbytes = save_2bit(path, codes)
        assert nbytes == pytest.approx(100_000 / 4 + 100_000 / 8 + 32, rel=0.01)


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.mg2b"
        path.write_bytes(b"NOPE" + b"\0" * 60)
        with pytest.raises(SequenceError, match="magic"):
            load_2bit(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.mg2b"
        path.write_bytes(b"MG2B\x01")
        with pytest.raises(SequenceError, match="truncated"):
            load_2bit(path)

    def test_truncated_payload(self, tmp_path, rng):
        codes = rng.integers(0, 4, 1000).astype(np.uint8)
        path = tmp_path / "trunc.mg2b"
        save_2bit(path, codes)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 50])
        with pytest.raises(SequenceError, match="truncated"):
            load_2bit(path)

    def test_inconsistent_sizes(self, tmp_path):
        import struct
        header = struct.pack("<4sIQQQ", b"MG2B", 1, 100, 5, 5)  # wrong sizes
        path = tmp_path / "bad2.mg2b"
        path.write_bytes(header + b"\0" * 10)
        with pytest.raises(SequenceError, match="inconsistent"):
            load_2bit(path)

    def test_wrong_version(self, tmp_path):
        import struct
        header = struct.pack("<4sIQQQ", b"MG2B", 9, 0, 0, 0)
        path = tmp_path / "v9.mg2b"
        path.write_bytes(header)
        with pytest.raises(SequenceError, match="version"):
            load_2bit(path)
