"""Unit tests: repro.workloads (random sequences, mutation, catalog)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import alphabet
from repro.workloads import (
    DIVERGED,
    HUMAN_CHIMP,
    PAPER_PAIRS,
    MutationProfile,
    chromosome_like,
    get_pair,
    identity_pair,
    insert_n_runs,
    insert_tandem_repeats,
    mutate,
    random_dna,
    synthesize_pair,
)
from repro.workloads.mutate import apply_indels, apply_inversions, apply_snps, apply_translocations


class TestRandomDna:
    def test_length_and_range(self):
        s = random_dna(1000, rng=0)
        assert s.size == 1000
        assert s.dtype == np.uint8
        assert int(s.max()) < 4

    def test_gc_content_calibrated(self):
        s = random_dna(200_000, rng=0, gc_content=0.41)
        gc = np.isin(s, [1, 2]).mean()
        assert abs(gc - 0.41) < 0.01

    def test_deterministic_by_seed(self):
        assert np.array_equal(random_dna(100, rng=7), random_dna(100, rng=7))

    def test_zero_length(self):
        assert random_dna(0, rng=0).size == 0

    @pytest.mark.parametrize("bad", [-1])
    def test_negative_length_rejected(self, bad):
        with pytest.raises(SequenceError):
            random_dna(bad, rng=0)

    def test_bad_gc_rejected(self):
        with pytest.raises(SequenceError):
            random_dna(10, rng=0, gc_content=1.5)


class TestNRunsAndRepeats:
    def test_n_runs_fraction(self):
        s = random_dna(100_000, rng=0)
        out = insert_n_runs(s, rng=1, run_count=3, run_fraction=0.05)
        frac = (out == alphabet.N).mean()
        assert 0.02 <= frac <= 0.06  # runs may overlap

    def test_n_runs_zero_noop(self):
        s = random_dna(1000, rng=0)
        assert np.array_equal(insert_n_runs(s, rng=1, run_count=0), s)

    def test_n_runs_returns_copy(self):
        s = random_dna(1000, rng=0)
        out = insert_n_runs(s, rng=1)
        assert out is not s

    def test_bad_fraction_rejected(self):
        with pytest.raises(SequenceError):
            insert_n_runs(random_dna(10, rng=0), run_fraction=1.0)

    def test_tandem_repeats_create_periodicity(self):
        s = random_dna(10_000, rng=0)
        out = insert_tandem_repeats(s, rng=2, repeat_count=1, unit_length=20, copies=10)
        # somewhere there is a 20-periodic stretch of 200 bases
        shifted_eq = out[:-20] == out[20:]
        run = 0
        best = 0
        for v in shifted_eq:
            run = run + 1 if v else 0
            best = max(best, run)
        assert best >= 150

    def test_repeats_too_long_noop(self):
        s = random_dna(50, rng=0)
        out = insert_tandem_repeats(s, rng=2, unit_length=50, copies=8)
        assert np.array_equal(out, s)

    def test_chromosome_like_composition(self):
        s = chromosome_like(50_000, rng=3)
        assert (s == alphabet.N).any()
        assert s.size == 50_000


class TestSnps:
    def test_rate_zero_identity(self):
        s = random_dna(1000, rng=0)
        out = apply_snps(s, 0.0, np.random.default_rng(0))
        assert np.array_equal(out, s)

    def test_mutated_positions_change(self):
        s = random_dna(50_000, rng=0)
        out = apply_snps(s, 0.1, np.random.default_rng(1))
        diff = (out != s).mean()
        assert 0.08 <= diff <= 0.12  # every selected site truly changes

    def test_n_positions_untouched(self):
        s = np.full(1000, alphabet.N, dtype=np.uint8)
        out = apply_snps(s, 1.0, np.random.default_rng(0))
        assert (out == alphabet.N).all()

    def test_bad_rate_rejected(self):
        with pytest.raises(SequenceError):
            apply_snps(random_dna(10, rng=0), 1.5, np.random.default_rng(0))


class TestIndels:
    def test_rate_zero_identity(self):
        s = random_dna(1000, rng=0)
        assert np.array_equal(apply_indels(s, 0.0, 3.0, np.random.default_rng(0)), s)

    def test_length_changes_bounded(self):
        s = random_dna(100_000, rng=0)
        out = apply_indels(s, 0.001, 3.0, np.random.default_rng(1))
        # ~100 events of mean 3 → drift of a few hundred bases
        assert abs(out.size - s.size) < 3000
        assert out.size != s.size  # essentially certain with 100 events

    def test_values_stay_valid(self):
        s = random_dna(10_000, rng=0)
        out = apply_indels(s, 0.01, 4.0, np.random.default_rng(2))
        assert int(out.max()) < 4


class TestStructural:
    def test_inversions_preserve_length(self):
        s = random_dna(10_000, rng=0)
        out = apply_inversions(s, 3, 100, np.random.default_rng(0))
        assert out.size == s.size
        assert not np.array_equal(out, s)

    def test_translocations_preserve_length_and_content(self):
        s = random_dna(10_000, rng=0)
        out = apply_translocations(s, 3, 100, np.random.default_rng(0))
        assert out.size == s.size
        assert np.array_equal(np.sort(out), np.sort(s))


class TestMutationProfile:
    def test_validation(self):
        with pytest.raises(SequenceError):
            MutationProfile(snp_rate=2.0)
        with pytest.raises(SequenceError):
            MutationProfile(indel_mean_len=0.5)
        with pytest.raises(SequenceError):
            MutationProfile(inversion_count=-1)

    def test_mutate_deterministic(self):
        s = random_dna(5000, rng=0)
        m1 = mutate(s, HUMAN_CHIMP, rng=9)
        m2 = mutate(s, HUMAN_CHIMP, rng=9)
        assert np.array_equal(m1, m2)

    def test_diverged_profile_changes_more(self):
        s = random_dna(20_000, rng=0)
        close = mutate(s, HUMAN_CHIMP, rng=1)
        far = mutate(s, DIVERGED, rng=1)
        n = min(s.size, close.size, far.size)
        assert (far[:n] != s[:n]).mean() > (close[:n] != s[:n]).mean()


class TestCatalog:
    def test_paper_pairs_present(self):
        assert [p.name for p in PAPER_PAIRS] == ["chr22", "chr21", "chr20", "chr19"]
        for p in PAPER_PAIRS:
            assert p.human_len > 30_000_000
            assert p.cells > 1e15

    def test_get_pair(self):
        assert get_pair("chr21").name == "chr21"
        with pytest.raises(SequenceError):
            get_pair("chrX")

    def test_scaled(self):
        p = get_pair("chr22").scaled(1e-3)
        assert p.human_len == int(35_194_566 * 1e-3)
        with pytest.raises(SequenceError):
            get_pair("chr22").scaled(0)

    def test_synthesize_pair_shapes_and_identity(self):
        pair = get_pair("chr22")
        human, chimp = synthesize_pair(pair, scale=3e-4, seed=0)
        scaled = pair.scaled(3e-4)
        assert human.size == scaled.human_len
        assert chimp.size == scaled.chimp_len
        # positional identity before the first indel shifts the frame
        # should reflect the ~1.2% SNP calibration
        assert (human[:500] == chimp[:500]).mean() > 0.9

    def test_synthesize_deterministic(self):
        pair = get_pair("chr21")
        a1, b1 = synthesize_pair(pair, scale=1e-4, seed=5)
        a2, b2 = synthesize_pair(pair, scale=1e-4, seed=5)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_identity_pair(self):
        a, b = identity_pair(10_000, 0.9, seed=0)
        assert a.size == b.size == 10_000
        assert abs((a == b).mean() - 0.9) < 0.02
        with pytest.raises(SequenceError):
            identity_pair(10, 1.5)
