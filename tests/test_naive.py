"""Unit tests: repro.sw.naive (the oracle must itself be trustworthy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seq import DNA_DEFAULT, Scoring, encode
from repro.sw import naive
from repro.sw.alignment import from_ops

from helpers import random_codes, random_scoring


class TestHandComputedCases:
    def test_single_match(self):
        score, i, j = naive.sw_score_naive(encode("A"), encode("A"), DNA_DEFAULT)
        assert (score, i, j) == (1, 0, 0)

    def test_single_mismatch_is_empty(self):
        score, i, j = naive.sw_score_naive(encode("A"), encode("C"), DNA_DEFAULT)
        assert (score, i, j) == (0, -1, -1)

    def test_perfect_match_score(self):
        s = encode("ACGTACGT")
        score, i, j = naive.sw_score_naive(s, s, DNA_DEFAULT)
        assert score == 8
        assert (i, j) == (7, 7)

    def test_substring_match(self):
        score, i, j = naive.sw_score_naive(encode("TTACGTT"), encode("GGACGGG"), DNA_DEFAULT)
        assert score == 3  # "ACG"
        assert (i, j) == (4, 4)

    def test_affine_gap_cost_manual(self):
        # Alignment forced through a 2-gap by unique flanks.
        sc = Scoring(match=2, mismatch=-10, gap_open=2, gap_extend=1)
        a = encode("CATTACCGGA")
        b = encode("CATTAGGA")  # "CC" deleted
        score, *_ = naive.sw_score_naive(a, b, sc)
        # 8 matches * 2 - (open 2 + 2 * extend 1) = 16 - 4 = 12
        assert score == 12

    def test_n_blocks_matching(self):
        a = encode("ACGTNNNNACGT")
        score, *_ = naive.sw_score_naive(a, a, DNA_DEFAULT)
        # The N run scores mismatches against itself; two clean 4-mers remain.
        assert score == max(4, 8 - 4 * 3 + 4)  # either one 4-mer or spanning


class TestMatrices:
    def test_local_matrix_nonnegative(self, rng):
        a = random_codes(rng, 12)
        b = random_codes(rng, 12)
        mats = naive.full_matrices(a, b, DNA_DEFAULT, local=True)
        assert (mats.H >= 0).all()

    def test_global_corner_value(self):
        a = encode("ACGT")
        mats = naive.full_matrices(a, a, DNA_DEFAULT, local=False)
        assert mats.score == 4

    def test_global_boundary_gaps(self):
        a = encode("ACGT")
        b = encode("A")
        mats = naive.full_matrices(a, b, DNA_DEFAULT, local=False)
        # H(i, 0) = -(open + i*ext)
        for i in range(1, 5):
            assert mats.H[i, 0] == -(3 + 2 * i)


class TestTraceback:
    def test_local_traceback_rescores(self, rng):
        for _ in range(30):
            a = random_codes(rng, int(rng.integers(1, 25)))
            b = random_codes(rng, int(rng.integers(1, 25)))
            sc = random_scoring(rng)
            score, ops, start, end = naive.align_naive(a, b, sc, local=True)
            aln = from_ops(score, ops, start, end)
            assert aln.rescore(a, b, sc) == score

    def test_global_traceback_rescores(self, rng):
        for _ in range(30):
            a = random_codes(rng, int(rng.integers(1, 20)))
            b = random_codes(rng, int(rng.integers(1, 20)))
            sc = random_scoring(rng)
            score, ops, start, end = naive.align_naive(a, b, sc, local=False)
            aln = from_ops(score, ops, start, end)
            assert aln.rescore(a, b, sc) == score
            # global covers everything
            assert (end[0] - start[0], end[1] - start[1]) == (a.size, b.size)

    def test_empty_alignment(self):
        score, ops, start, end = naive.align_naive(encode("A"), encode("C"), DNA_DEFAULT)
        assert score == 0 and ops == []

    def test_local_alignment_starts_and_ends_with_match(self, rng):
        for _ in range(20):
            a = random_codes(rng, 20)
            b = random_codes(rng, 20)
            score, ops, *_ = naive.align_naive(a, b, DNA_DEFAULT, local=True)
            if ops:
                assert ops[0] == "M" and ops[-1] == "M"
