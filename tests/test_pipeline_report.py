"""Unit tests: repro.multigpu.pipeline and repro.perf.report."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS
from repro.multigpu import ChainConfig, align_and_trace, time_multi_gpu
from repro.perf import chain_report
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


class TestAlignAndTrace:
    def test_end_to_end_homologs(self, rng):
        a = random_codes(rng, 250)
        b = mutated_copy(rng, a, 0.04)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_and_trace(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=32))
        assert res.score == want
        assert res.alignment.score == want
        res.alignment.validate(a, b, DNA_DEFAULT)
        assert res.gcups > 0

    def test_partitioned_traceback_path(self, rng):
        a = random_codes(rng, 200)
        b = mutated_copy(rng, a, 0.06)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_and_trace(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS,
                              config=ChainConfig(block_rows=32),
                              partitioned=True, special_interval=32)
        assert res.alignment.score == want

    def test_empty_alignment(self, rng):
        import numpy as np
        a = np.zeros(20, dtype=np.uint8)       # AAAA...
        b = np.full(20, 3, dtype=np.uint8)     # TTTT...
        res = align_and_trace(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS)
        assert res.score == 0
        assert res.alignment.ops == ""

    def test_random_pairs(self, rng):
        for _ in range(5):
            a = random_codes(rng, int(rng.integers(30, 150)))
            b = random_codes(rng, int(rng.integers(30, 150)))
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            res = align_and_trace(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS,
                                  config=ChainConfig(block_rows=16))
            assert res.score == want


class TestChainReport:
    def test_report_sections(self):
        res = time_multi_gpu(1_000_000, 1_000_000, ENV1_HETEROGENEOUS,
                             config=ChainConfig(block_rows=4096))
        text = chain_report(res, title="unit test")
        assert "== unit test ==" in text
        assert "GCUPS" in text
        assert "GTX 580" in text and "Tesla K20" in text
        assert "channel" in text
        assert "block_rows=4096" in text

    def test_report_single_device_no_channels(self):
        res = time_multi_gpu(100_000, 100_000, ENV1_HETEROGENEOUS[:1])
        text = chain_report(res)
        assert "channel" not in text

    def test_report_includes_score_in_compute_mode(self, rng):
        from repro.multigpu import align_multi_gpu
        a = random_codes(rng, 60)
        res = align_multi_gpu(a, a, DNA_DEFAULT, ENV2_HOMOGENEOUS)
        text = chain_report(res)
        assert f"best score: {res.score}" in text

    def test_json_dict_roundtrips_through_json(self, rng):
        import json

        from repro.multigpu import align_multi_gpu
        from repro.perf import chain_result_dict

        a = random_codes(rng, 60)
        res = align_multi_gpu(a, a, DNA_DEFAULT, ENV2_HOMOGENEOUS)
        d = chain_result_dict(res)
        back = json.loads(json.dumps(d))
        assert back["score"] == res.score
        assert back["gcups"] == pytest.approx(res.gcups)
        assert len(back["devices"]) == 2
        assert len(back["channels"]) == 1
        assert back["devices"][0]["cells"] + back["devices"][1]["cells"] == res.cells

    def test_json_dict_phantom_has_null_score(self):
        from repro.perf import chain_result_dict

        res = time_multi_gpu(10_000, 10_000, ENV2_HOMOGENEOUS)
        d = chain_result_dict(res)
        assert d["score"] is None and d["end"] is None
