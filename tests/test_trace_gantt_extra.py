"""Additional coverage: trace rendering paths, cluster+checkpoint combos,
autotune with the SM model attached."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.device import GTX_680, TESLA_M2090, Tracer, calibrated, render_gantt
from repro.multigpu import (
    ChainConfig,
    ClusterChain,
    MatrixWorkload,
    Node,
    autotune,
    time_multi_gpu,
)
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import random_codes


class TestGanttRenderingPaths:
    def test_makespan_inferred_from_intervals(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 4.0)
        t.record("a", "d2h", 4.0, 5.0)
        art = render_gantt(t, width=10)
        assert "#" in art and ">" in art

    def test_h2d_and_wait_glyphs(self):
        t = Tracer()
        t.record("b", "h2d", 0.0, 5.0)
        t.record("b", "wait", 5.0, 10.0)
        art = render_gantt(t, width=10)
        assert "<" in art and "." in art

    def test_dominant_kind_wins_bucket(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 0.9)
        t.record("a", "d2h", 0.9, 1.0)
        art = render_gantt(t, width=1)
        assert "#" in art.splitlines()[0]

    def test_zero_length_trace(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 0.0)
        assert "zero-length" in render_gantt(t)


class TestClusterCheckpoint:
    def test_checkpoint_moves_between_cluster_and_single_host(self, rng):
        """Stop on a cluster, resume on a plain multi-GPU chain."""
        a = random_codes(rng, 160)
        b = random_codes(rng, 200)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)

        cluster = ClusterChain(
            [Node("n0", (TESLA_M2090,)), Node("n1", (TESLA_M2090,))],
            config=ChainConfig(block_rows=16),
        )
        ck = cluster.run(wl, stop_row=80).checkpoint
        assert ck is not None

        from repro.multigpu import MultiGpuChain
        plain = MultiGpuChain((GTX_680,), config=ChainConfig(block_rows=16))
        assert plain.run(wl, resume=ck).score == want

    def test_cluster_with_tracer(self, rng):
        a = random_codes(rng, 100)
        tracer = Tracer()
        cluster = ClusterChain(
            [Node("n0", (TESLA_M2090,)), Node("n1", (TESLA_M2090,))],
            config=ChainConfig(block_rows=16),
        )
        cluster.run(MatrixWorkload(a, a, DNA_DEFAULT), tracer=tracer)
        assert len(tracer.actors()) == 2
        # Cross-node traffic shows up as both D2H (sender) and H2D (receiver).
        names = tracer.actors()
        assert tracer.total(names[0], "d2h") > 0
        assert tracer.total(names[1], "h2d") > 0


class TestAutotuneWithSMModel:
    def test_sm_model_pushes_block_height_up(self):
        """With the intra-GPU pipeline model, tiny block rows starve the
        device, so the tuner must avoid the smallest candidates."""
        sm = calibrated(GTX_680.gcups, sm_count=8, min_block_cols=2048,
                        rows_per_step=8)
        dev = replace(GTX_680, sm_model=sm)
        t = autotune((dev, dev), 20_000_000, 20_000_000,
                     block_rows_candidates=(64, 256, 4096, 16384))
        assert t.config.block_rows >= 4096
        # Confirm on the simulator: the tuned config beats the smallest.
        tuned = time_multi_gpu(20_000_000, 20_000_000, (dev, dev), config=t.config)
        tiny = time_multi_gpu(20_000_000, 20_000_000, (dev, dev),
                              config=ChainConfig(block_rows=64,
                                                 channel_capacity=t.config.channel_capacity))
        assert tuned.gcups > tiny.gcups
