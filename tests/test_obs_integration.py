"""Acceptance tests: telemetry across all four engines.

The unified metrics registry must tell one consistent story regardless
of which engine produced it: every block a chain owes (block rows x
workers) is accounted for as computed or pruned, per-device counters sum
to the engine's own totals, and the heartbeat watchdog turns a killed
worker into an error that names the victim's last completed row.
"""

from __future__ import annotations

import math

import pytest

from repro.device import ENV2_HOMOGENEOUS, GTX_680
from repro.errors import ObsError
from repro.multigpu import WorkerPool, align_multi_gpu, align_multi_process
from repro.multigpu.chain import ChainConfig
from repro.baselines import run_single_gpu
from repro.obs import MetricsRegistry
from repro.obs.heartbeat import StallReport
from repro.obs.instruments import SWEEP_BUCKETS
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


def _block_totals(reg: MetricsRegistry) -> tuple[int, int]:
    return (reg.counter("blocks_computed").total(),
            reg.counter("blocks_pruned").total())


class TestProcessChainAccounting:
    def test_per_worker_counters_sum_to_block_grid(self, rng):
        """blocks_computed + blocks_pruned == block rows x workers, and
        each worker's share is exactly its column of the grid."""
        a = random_codes(rng, 700)
        b = random_codes(rng, 900)
        reg = MetricsRegistry()
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=64,
                                  metrics=reg)
        n_rows = math.ceil(a.size / 64)
        computed, pruned = _block_totals(reg)
        assert pruned == 0  # pruning off
        assert computed == n_rows * 3
        for g in range(3):
            assert reg.counter("blocks_computed").value(
                device=f"worker{g}") == n_rows
        # And the run still scores correctly with telemetry attached.
        assert res.score == sw_score_naive(a, b, DNA_DEFAULT)[0]

    def test_pruned_plus_computed_covers_grid_under_pruning(self, rng):
        """With distributed pruning on a self-alignment, pruned blocks
        appear in the registry and the grid total still balances."""
        a = random_codes(rng, 600)
        b = mutated_copy(rng, a, 0.02)
        reg = MetricsRegistry()
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=64,
                                  pruning=True, metrics=reg)
        computed, pruned = _block_totals(reg)
        assert computed + pruned == math.ceil(a.size / 64) * 3
        assert pruned == res.blocks_pruned
        assert res.blocks_pruned > 0  # homologs prune on this workload

    def test_cells_and_border_bytes_consistent(self, rng):
        a = random_codes(rng, 256)
        b = random_codes(rng, 384)
        reg = MetricsRegistry()
        align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=64,
                            metrics=reg)
        assert reg.counter("cells_computed").total() == a.size * b.size
        # One internal boundary: worker0 sends, worker1 receives, byte
        # for byte.
        sent = reg.counter("border_bytes_sent").value(device="worker0")
        recv = reg.counter("border_bytes_received").value(device="worker1")
        assert sent == recv > 0
        assert reg.counter("border_bytes_sent").value(device="worker1") == 0

    def test_run_summary_gauges(self, rng):
        a = random_codes(rng, 200)
        b = random_codes(rng, 200)
        reg = MetricsRegistry()
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32,
                                  metrics=reg)
        assert reg.counter("alignments_total").value(backend="process") == 1
        assert reg.gauge("last_run_gcups").value(
            backend="process") == pytest.approx(res.gcups)
        assert reg.gauge("last_run_wall_time_s").value(backend="process") > 0
        # Sweep latencies landed in the histogram, one per block.
        hist = reg.histogram("block_sweep_seconds", buckets=SWEEP_BUCKETS)
        sweeps = sum(hist.count(device=f"worker{g}") for g in range(2))
        assert sweeps == reg.counter("blocks_computed").total()

    def test_no_metrics_families_without_registry(self, rng):
        """metrics=None must stay a no-op: the run works and no registry
        is invented behind the caller's back."""
        a = random_codes(rng, 120)
        b = random_codes(rng, 150)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32)
        assert res.score == sw_score_naive(a, b, DNA_DEFAULT)[0]


class TestPoolAccounting:
    def test_counters_accumulate_across_comparisons(self, rng):
        """The pool merges every run into the same registry: two runs of
        the same shape double the block counters."""
        reg = MetricsRegistry()
        with WorkerPool(2, max_block_rows=64) as pool:
            a = random_codes(rng, 300)
            b = random_codes(rng, 300)
            for _ in range(2):
                res = pool.align(a, b, DNA_DEFAULT, block_rows=64, metrics=reg)
            assert res.score == sw_score_naive(a, b, DNA_DEFAULT)[0]
        n_rows = math.ceil(300 / 64)
        computed, pruned = _block_totals(reg)
        assert (computed, pruned) == (n_rows * 2 * 2, 0)
        assert reg.counter("alignments_total").value(backend="pool") == 2

    def test_pool_pruning_balances_grid(self, rng):
        a = random_codes(rng, 400)
        b = mutated_copy(rng, a, 0.02)
        reg = MetricsRegistry()
        with WorkerPool(2, max_block_rows=64) as pool:
            res = pool.align(a, b, DNA_DEFAULT, block_rows=64, pruning=True,
                             metrics=reg)
        computed, pruned = _block_totals(reg)
        assert computed + pruned == math.ceil(400 / 64) * 2
        assert pruned == res.blocks_pruned


class TestSimChainAccounting:
    def test_sim_chain_counters_match_grid_and_cells(self, rng):
        a = random_codes(rng, 500)
        b = random_codes(rng, 640)
        reg = MetricsRegistry()
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS,
                              config=ChainConfig(block_rows=64), metrics=reg)
        n_gpus = len(ENV2_HOMOGENEOUS)
        computed, pruned = _block_totals(reg)
        assert pruned == 0
        assert computed == math.ceil(a.size / 64) * n_gpus
        assert reg.counter("cells_computed").total() == a.size * b.size
        assert reg.counter("alignments_total").value(backend="sim") == 1
        assert reg.gauge("last_run_gcups").value(
            backend="sim") == pytest.approx(res.gcups)
        # Every GPU has its own device series ("[i] <spec name>").
        for i, spec in enumerate(ENV2_HOMOGENEOUS):
            assert reg.counter("blocks_computed").value(
                device=f"[{i}] {spec.name}") > 0

    def test_sim_border_traffic_symmetric(self, rng):
        a = random_codes(rng, 256)
        b = random_codes(rng, 512)
        reg = MetricsRegistry()
        align_multi_gpu(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS,
                        config=ChainConfig(block_rows=64), metrics=reg)
        assert reg.counter("border_bytes_sent").total() == \
            reg.counter("border_bytes_received").total() > 0


class TestSingleGpuAccounting:
    def test_cells_and_blocks_without_pruning(self, rng):
        a = random_codes(rng, 300)
        b = random_codes(rng, 400)
        reg = MetricsRegistry()
        res = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=64,
                             metrics=reg)
        assert reg.counter("cells_computed").total() == a.size * b.size
        assert reg.counter("blocks_computed").value(
            device="single-gpu") == math.ceil(a.size / 64)
        assert reg.counter("blocks_pruned").total() == 0
        assert reg.gauge("last_run_gcups").value(
            backend="single") == pytest.approx(res.gcups)

    def test_pruned_blocks_recorded(self, rng):
        a = random_codes(rng, 512)
        b = mutated_copy(rng, a, 0.02)
        reg = MetricsRegistry()
        res = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=64,
                             prune=True, metrics=reg)
        assert res.blocks_pruned > 0
        assert reg.counter("blocks_pruned").value(
            device="single-gpu") == res.blocks_pruned
        assert reg.counter("cells_computed").total() == res.cells_computed


class TestWatchdogOnWorkerDeath:
    def test_killed_worker_error_names_last_completed_row(self, rng):
        """The acceptance scenario: kill worker 1 mid-run with the
        heartbeat armed; the propagated error must say what the victim
        had finished."""
        a = random_codes(rng, 700)
        b = random_codes(rng, 900)
        stalls: list[StallReport] = []
        with pytest.raises(RuntimeError) as err:
            align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=64,
                                heartbeat_s=0.5, on_stall=stalls.append,
                                _fault=(1, 3))
        msg = str(err.value)
        assert "worker 1" in msg
        assert "last completed row" in msg
        # The fault fires at block 3, i.e. after 3 completed block rows.
        assert "last completed row 192" in msg
        # The dead worker stalls; its neighbours (blocked on borders that
        # will never move) may be reported too.
        victim = [s for s in stalls if s.worker == 1]
        assert victim and victim[0].rows_done == 192

    def test_death_without_heartbeat_still_reported(self, rng):
        """heartbeat off -> the plain liveness diagnosis, no row detail."""
        a = random_codes(rng, 700)
        b = random_codes(rng, 900)
        with pytest.raises(RuntimeError) as err:
            align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=64,
                                _fault=(1, 3))
        assert "worker 1" in str(err.value)
        assert "last completed row" not in str(err.value)

    def test_clean_run_with_heartbeat_reports_no_stalls(self, rng):
        a = random_codes(rng, 200)
        b = random_codes(rng, 240)
        stalls: list[StallReport] = []
        reg = MetricsRegistry()
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32,
                                  heartbeat_s=30.0, on_stall=stalls.append,
                                  metrics=reg)
        assert res.score == sw_score_naive(a, b, DNA_DEFAULT)[0]
        assert stalls == []
        assert reg.counter("worker_stalls").total() == 0
        # The final tick recorded each worker's full row count.
        for g in range(2):
            assert reg.gauge("worker_rows_done").value(
                device=f"worker{g}") == a.size


class TestTelemetryIsObsOnly:
    def test_obs_errors_are_distinct_type(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObsError):
            reg.gauge("x")
