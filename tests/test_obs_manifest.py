"""Unit tests: repro.obs.manifest + repro.obs.diff."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ObsError
from repro.obs import (
    MANIFEST_SCHEMA,
    DiffEntry,
    build_manifest,
    diff_documents,
    flatten_scalars,
    format_diff,
    load_manifest,
    sequence_digest,
    validate_manifest,
    write_manifest,
)


def _manifest(**overrides):
    kwargs = dict(
        backend="process",
        config={"workers": 2, "block_rows": 64},
        result={"score": 10, "gcups": 0.5},
        sequences={"a": sequence_digest(np.zeros(8, dtype=np.int8))},
        wall_time_s=1.25,
    )
    kwargs.update(overrides)
    return build_manifest(**kwargs)


class TestSequenceDigest:
    def test_digest_depends_on_content_not_container(self):
        a = np.array([0, 1, 2, 3], dtype=np.int8)
        assert sequence_digest(a) == sequence_digest(a.copy())
        b = np.array([0, 1, 2, 0], dtype=np.int8)
        assert sequence_digest(a)["sha256"] != sequence_digest(b)["sha256"]

    def test_digest_records_length_and_dtype(self):
        d = sequence_digest(np.zeros(17, dtype=np.int8))
        assert d["length"] == 17
        assert d["dtype"] == "int8"
        assert len(d["sha256"]) == 64


class TestBuildManifest:
    def test_build_is_schema_valid_and_versioned(self):
        doc = _manifest()
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["tool"] == {"name": "mgsw", "version": repro.__version__}
        assert doc["environment"]["numpy"] == np.__version__
        validate_manifest(doc)  # must not raise

    def test_distinct_run_ids(self):
        assert _manifest()["run_id"] != _manifest()["run_id"]

    def test_explicit_run_id_and_extra(self):
        doc = _manifest(run_id="abc123", extra={"note": "x"})
        assert doc["run_id"] == "abc123"
        assert doc["extra"] == {"note": "x"}

    def test_command_and_metrics_recorded(self):
        doc = _manifest(command=["align", "a.fa", "b.fa"],
                        metrics={"counters": {}, "gauges": {}, "histograms": {}})
        assert doc["command"] == ["align", "a.fa", "b.fa"]
        assert doc["metrics"] == {"counters": {}, "gauges": {}, "histograms": {}}


class TestValidateManifest:
    def test_missing_key_listed(self):
        doc = _manifest()
        del doc["backend"]
        with pytest.raises(ObsError, match="backend"):
            validate_manifest(doc)

    def test_wrong_type_listed(self):
        doc = _manifest()
        doc["config"] = "not a dict"
        with pytest.raises(ObsError, match="config"):
            validate_manifest(doc)

    def test_unknown_schema_rejected(self):
        doc = _manifest()
        doc["schema"] = "mgsw.telemetry.manifest/v999"
        with pytest.raises(ObsError, match="schema"):
            validate_manifest(doc)

    def test_bad_sequence_digest_rejected(self):
        doc = _manifest()
        doc["sequences"]["a"] = {"sha256": "x"}  # no length
        with pytest.raises(ObsError, match="sequence"):
            validate_manifest(doc)

    def test_negative_wall_time_rejected(self):
        doc = _manifest()
        doc["wall_time_s"] = -1.0
        with pytest.raises(ObsError, match="wall_time_s"):
            validate_manifest(doc)

    def test_non_mapping_rejected(self):
        with pytest.raises(ObsError):
            validate_manifest([1, 2, 3])


class TestWriteLoad:
    def test_roundtrip(self, tmp_path):
        doc = _manifest()
        path = write_manifest(tmp_path / "manifest.json", doc)
        assert load_manifest(path) == doc

    def test_write_validates_first(self, tmp_path):
        doc = _manifest()
        del doc["result"]
        with pytest.raises(ObsError):
            write_manifest(tmp_path / "manifest.json", doc)
        assert not (tmp_path / "manifest.json").exists()


class TestFlattenScalars:
    def test_nested_paths_and_list_indices(self):
        flat = flatten_scalars({"a": {"b": 1}, "c": [2.5, {"d": 3}]})
        assert flat == {"a.b": 1.0, "c[0]": 2.5, "c[1].d": 3.0}

    def test_bools_and_strings_skipped(self):
        assert flatten_scalars({"x": True, "y": "s", "z": 0}) == {"z": 0.0}


class TestClassify:
    """Direction fragments match path *segments*, never raw substrings."""

    def test_segment_matches_classify(self):
        from repro.obs.diff import classify

        assert classify("result.score") == "higher"
        assert classify("best_score") == "higher"
        assert classify("prune_rate") == "higher"
        assert classify("rate[0]") == "higher"
        assert classify("wall_time_s") == "lower"
        assert classify("sampler.overhead") == "lower"

    def test_substring_lookalikes_stay_info(self):
        from repro.obs.diff import classify

        # 'score' must not swallow 'scoreboard', nor 'rate' 'separate'.
        assert classify("scoreboard_reads") == "info"
        assert classify("separate_runs") == "info"
        assert classify("accelerated_blocks") == "info"
        assert classify("underscore_total") == "info"

    def test_lookalike_never_raises_false_regression(self):
        # The bug this pins: a 'scoreboard_reads' drop classified as
        # 'higher' would have flagged a regression on an info counter.
        entries = diff_documents({"scoreboard_reads": 100.0},
                                 {"scoreboard_reads": 1.0})
        assert not any(e.regressed(0.05) for e in entries)


class TestDiff:
    def test_gcups_drop_regresses(self):
        entries = diff_documents({"gcups": 10.0}, {"gcups": 8.0}, threshold=0.05)
        assert entries[0].regressed(0.05)

    def test_time_growth_regresses(self):
        entries = diff_documents({"wall_time_s": 1.0}, {"wall_time_s": 2.0})
        assert entries[0].regressed(0.05)

    def test_within_threshold_ok(self):
        entries = diff_documents({"gcups": 10.0}, {"gcups": 9.9}, threshold=0.05)
        assert not any(e.regressed(0.05) for e in entries)

    def test_info_keys_never_regress(self):
        entries = diff_documents({"workers": 4}, {"workers": 1})
        assert not any(e.regressed(0.05) for e in entries)

    def test_histogram_bucket_counts_are_ignored(self):
        """Bucket counts contain 'seconds' in their path but are shape,
        not performance — they must not raise false regressions."""
        old = {"block_sweep_seconds": {"series": [{"counts": [5, 0]}]}}
        new = {"block_sweep_seconds": {"series": [{"counts": [0, 5]}]}}
        entries = diff_documents(old, new)
        assert not any(e.regressed(0.05) for e in entries)

    def test_regressions_sort_first(self):
        old = {"gcups": 10.0, "score": 5.0}
        new = {"gcups": 5.0, "score": 5.0}
        entries = diff_documents(old, new)
        assert entries[0].key == "gcups"

    def test_zero_old_value_is_infinite_change(self):
        e = DiffEntry(key="wall_time_s", old=0.0, new=1.0, direction="lower")
        assert e.rel_change == float("inf")
        assert e.regressed(0.05)

    def test_format_diff_reports_counts(self):
        entries = diff_documents({"gcups": 10.0}, {"gcups": 8.0})
        text = format_diff(entries, threshold=0.05)
        assert "REGRESSED" in text
        assert "1 regression(s) at threshold 5%" in text

    def test_format_diff_empty(self):
        assert "no shared numeric keys" in format_diff([], threshold=0.05)
