"""Integration tests: repro.multigpu.pool (persistent slab workers)."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.errors import ConfigError
from repro.multigpu import WorkerPool, align_batch_process, align_multi_process
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


class TestReuse:
    def test_workers_survive_across_comparisons(self, rng):
        """The whole point of the pool: same processes, many comparisons."""
        with WorkerPool(3, max_block_rows=64) as pool:
            pids = pool.worker_pids()
            for _ in range(3):
                a = random_codes(rng, 90)
                b = random_codes(rng, 140)
                res = pool.align(a, b, DNA_DEFAULT, block_rows=32)
                want, wi, wj = sw_score_naive(a, b, DNA_DEFAULT)
                assert res.score == want
                if want > 0:
                    assert (res.best.row, res.best.col) == (wi, wj)
            assert pool.worker_pids() == pids

    def test_matches_one_shot_backend(self, rng):
        a = random_codes(rng, 120)
        b = mutated_copy(rng, a, 0.05)
        one_shot = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32)
        with WorkerPool(2, max_block_rows=32) as pool:
            pooled = pool.align(a, b, DNA_DEFAULT, block_rows=32)
        assert pooled.score == one_shot.score
        assert (pooled.best.row, pooled.best.col) == (one_shot.best.row, one_shot.best.col)

    def test_heterogeneous_weights_shape_the_partition(self, rng):
        a = random_codes(rng, 60)
        b = random_codes(rng, 300)
        with WorkerPool(2, weights=[3.0, 1.0], max_block_rows=32) as pool:
            res = pool.align(a, b, DNA_DEFAULT, block_rows=32)
        assert [s.cols for s in res.partition] == [225, 75]
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        assert res.score == want

    def test_map_runs_every_pair(self, rng):
        pairs = [(random_codes(rng, 50), random_codes(rng, 70)) for _ in range(3)]
        with WorkerPool(2, max_block_rows=32) as pool:
            results = pool.map(pairs, DNA_DEFAULT, block_rows=16)
        assert len(results) == 3
        for res, (a, b) in zip(results, pairs):
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            assert res.score == want

    def test_batch_helper(self, rng):
        pairs = [(random_codes(rng, 40), random_codes(rng, 60)) for _ in range(2)]
        results = align_batch_process(pairs, DNA_DEFAULT, workers=2, block_rows=32)
        for res, (a, b) in zip(results, pairs):
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            assert res.score == want


class TestLifecycle:
    def test_closed_pool_refuses_work(self, rng):
        pool = WorkerPool(2, max_block_rows=32)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigError, match="closed"):
            pool.align(random_codes(rng, 20), random_codes(rng, 20), DNA_DEFAULT)

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            WorkerPool(0)
        with pytest.raises(ConfigError):
            WorkerPool(2, weights=[1.0])
        with pytest.raises(ConfigError):
            WorkerPool(2, transport="carrier-pigeon")
        with WorkerPool(2, max_block_rows=16) as pool:
            a = random_codes(rng, 30)
            with pytest.raises(ConfigError, match="max_block_rows"):
                pool.align(a, a, DNA_DEFAULT, block_rows=64)
            with pytest.raises(ConfigError, match="narrower"):
                pool.align(a, random_codes(rng, 1), DNA_DEFAULT, block_rows=16)

    def test_killed_worker_breaks_the_pool(self, rng):
        """A SIGKILLed worker yields one descriptive error, then the pool
        refuses further work (its transports can no longer be trusted)."""
        a = random_codes(rng, 600)
        b = random_codes(rng, 300)
        with WorkerPool(3, max_block_rows=16, border_timeout_s=2.0) as pool:
            os.kill(pool.worker_pids()[1], signal.SIGKILL)
            t0 = time.monotonic()
            with pytest.raises(RuntimeError, match="pool worker 1"):
                pool.align(a, b, DNA_DEFAULT, block_rows=16, timeout_s=30.0)
            assert time.monotonic() - t0 < 20.0
            assert pool.broken
            with pytest.raises(ConfigError, match="broken"):
                pool.align(a, b, DNA_DEFAULT, block_rows=16)
