"""Unit tests: repro.sw.pruning — the pruning criterion in isolation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sw.blocks import BlockSpec
from repro.sw.pruning import BlockPruner


def spec(row0=100, col0=100, rows=32, cols=32):
    return BlockSpec(row0, row0 + rows, col0, col0 + cols)


class TestUpperBound:
    def test_bound_formula(self):
        p = BlockPruner(match=2)
        # entry max(5, 3, 0)=5; remaining min(1000-100, 500-100)=400
        assert p.upper_bound(spec(), 1000, 500, 5, 3) == 5 + 2 * 400

    def test_bound_clamps_negative_entries_to_zero(self):
        p = BlockPruner(match=1)
        assert p.upper_bound(spec(), 1000, 1000, -10**9, -10**9) == 900

    def test_remaining_uses_min_dimension(self):
        p = BlockPruner(match=1)
        assert p.upper_bound(spec(row0=900, col0=0), 1000, 1000, 0, 0) == 100


class TestShouldPrune:
    def test_prunes_when_bound_not_better(self):
        p = BlockPruner(match=1)
        s = spec(row0=990, col0=990, rows=5, cols=5)
        assert p.should_prune(s, 1000, 1000, 2, 2, best_score=100)
        assert p.blocks_pruned == 1

    def test_never_prunes_without_positive_best(self):
        p = BlockPruner(match=1)
        assert not p.should_prune(spec(), 1000, 1000, 0, 0, best_score=0)

    def test_never_prunes_when_bound_exceeds_best(self):
        p = BlockPruner(match=1)
        assert not p.should_prune(spec(row0=0, col0=0), 1000, 1000, 0, 0, best_score=100)

    def test_disabled_pruner_never_prunes(self):
        p = BlockPruner(match=1, enabled=False)
        s = spec(row0=990, col0=990, rows=5, cols=5)
        assert not p.should_prune(s, 1000, 1000, 0, 0, best_score=10**6)
        assert p.blocks_checked == 0

    def test_ratio_accounting(self):
        p = BlockPruner(match=1)
        s_near_end = spec(row0=995, col0=995, rows=4, cols=4)
        s_at_start = spec(row0=0, col0=0)
        p.should_prune(s_near_end, 1000, 1000, 0, 0, best_score=50)
        p.should_prune(s_at_start, 1000, 1000, 0, 0, best_score=50)
        assert p.blocks_checked == 2
        assert p.blocks_pruned == 1
        assert p.pruned_ratio == 0.5

    def test_zero_checked_ratio(self):
        assert BlockPruner(match=1).pruned_ratio == 0.0


class TestValidation:
    @pytest.mark.parametrize("match", [0, -1])
    def test_bad_match_rejected(self, match):
        with pytest.raises(ConfigError):
            BlockPruner(match=match)
