"""Tests: shared-memory ProgressBoard + parent-side HeartbeatMonitor."""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

from repro.comm.progress import PHASES, ProgressBoard, ProgressSample
from repro.errors import CommError
from repro.obs import MetricsRegistry
from repro.obs.heartbeat import DEFAULT_STALL_AFTER_S, HeartbeatMonitor, StallReport


def _beat_worker(board: ProgressBoard, slot: int, rows: int, phase: str) -> None:
    """Attach to the pickled board in a spawned child and beat once."""
    board.beat(slot, rows, phase)
    board.close()


@pytest.fixture
def board():
    b = ProgressBoard(3, label="test-progress")
    yield b
    b.unlink()


class TestProgressBoard:
    def test_fresh_board_reads_never_started(self, board):
        for sample in board.snapshot():
            assert not sample.started
            assert sample.rows_done == 0
            assert sample.phase == "idle"
            assert sample.silent_s() == 0.0

    def test_beat_then_read_roundtrips(self, board):
        board.beat(1, 17, "compute")
        sample = board.read(1)
        assert sample.worker == 1
        assert sample.rows_done == 17
        assert sample.phase == "compute"
        assert sample.started
        # The other slots are untouched.
        assert not board.read(0).started
        assert not board.read(2).started

    def test_beat_timestamp_is_monotonic_clock(self, board):
        before = time.monotonic()
        board.beat(0, 1, "wait")
        after = time.monotonic()
        assert before <= board.read(0).last_beat <= after

    def test_silent_s_measures_from_last_beat(self, board):
        board.beat(0, 1, "compute")
        beat = board.read(0).last_beat
        assert board.read(0).silent_s(now=beat + 2.5) == pytest.approx(2.5)
        # Clock skew never goes negative.
        assert board.read(0).silent_s(now=beat - 1.0) == 0.0

    def test_all_phases_accepted(self, board):
        for i, phase in enumerate(PHASES):
            board.beat(0, i, phase)
            assert board.read(0).phase == phase

    def test_unknown_phase_rejected(self, board):
        with pytest.raises(CommError, match="unknown phase"):
            board.beat(0, 1, "sleeping")

    def test_out_of_range_slot_rejected(self, board):
        with pytest.raises(CommError):
            board.beat(3, 1, "compute")
        with pytest.raises(CommError):
            board.read(-1)

    def test_reset_zeroes_every_slot(self, board):
        for slot in range(3):
            board.beat(slot, 10 + slot, "send")
        board.reset()
        for sample in board.snapshot():
            assert not sample.started
            assert sample.rows_done == 0

    def test_zero_slots_rejected(self):
        with pytest.raises(CommError):
            ProgressBoard(0)

    def test_spawned_child_beats_into_parent_board(self, board):
        """The board pickles by segment name; a spawned child re-attaches
        and its stores are visible to the parent without any sync."""
        ctx = mp.get_context("spawn")
        p = ctx.Process(target=_beat_worker, args=(board, 2, 42, "send"))
        p.start()
        p.join(timeout=60.0)
        assert p.exitcode == 0
        sample = board.read(2)
        assert sample.rows_done == 42
        assert sample.phase == "send"
        assert sample.started

    def test_unpickle_on_same_host_attaches(self, board):
        import pickle

        clone = pickle.loads(pickle.dumps(board))
        try:
            board.beat(1, 9, "compute")
            assert clone.read(1).rows_done == 9
        finally:
            clone.close()

    def test_unpickle_on_other_host_rejected(self, board):
        """Beat timestamps are time.monotonic() readings — boot-relative,
        comparable only within the creating host.  Attaching a board that
        crossed a host boundary must fail loudly (module docstring:
        replicate derived progress, never the raw board)."""
        import pickle

        state = pickle.dumps(board)
        import repro.comm.progress as progress_mod

        real_node = progress_mod.platform.node
        progress_mod.platform.node = lambda: "some-other-host"
        try:
            with pytest.raises(CommError, match="monotonic"):
                pickle.loads(state)
        finally:
            progress_mod.platform.node = real_node

    def test_silent_s_clamps_future_beats_to_zero(self, board):
        """Same-host readers can race an in-flight store and observe a
        beat 'from the future'; negative silence must never escape."""
        board.beat(0, 1, "compute")
        beat = board.read(0).last_beat
        assert board.read(0).silent_s(now=beat - 0.001) == 0.0

    def test_context_manager_unlinks_for_owner(self):
        with ProgressBoard(1) as b:
            b.beat(0, 1, "compute")
        # Segment gone: re-attach by name must fail.
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=b.name)


class TestHeartbeatMonitor:
    def test_invalid_threshold_rejected(self, board):
        with pytest.raises(ValueError):
            HeartbeatMonitor(board, stall_after_s=0.0)

    def test_never_started_workers_are_not_stalled(self, board):
        monitor = HeartbeatMonitor(board, stall_after_s=0.01)
        assert monitor.stalled() == []
        assert monitor.describe(0) == "never heartbeat"

    def test_done_workers_are_not_stalled(self, board):
        board.beat(0, 5, "done")
        monitor = HeartbeatMonitor(board, stall_after_s=0.01)
        beat = board.read(0).last_beat
        assert monitor.stalled(now=beat + 100.0) == []

    def test_silent_started_worker_is_stalled(self, board):
        board.beat(1, 7, "wait")
        monitor = HeartbeatMonitor(board, stall_after_s=1.0)
        beat = board.read(1).last_beat
        assert monitor.stalled(now=beat + 0.5) == []
        reports = monitor.stalled(now=beat + 1.5)
        assert len(reports) == 1
        assert reports[0] == StallReport(1, 7, "wait", pytest.approx(1.5))
        assert "last completed row 7" in reports[0].describe()

    def test_describe_reports_row_phase_silence(self, board):
        board.beat(2, 31, "compute")
        monitor = HeartbeatMonitor(board)
        text = monitor.describe(2)
        assert "last completed row 31" in text
        assert "phase 'compute'" in text
        assert "silent" in text

    def test_watchdog_fires_on_stall_once_per_episode(self, board):
        """on_stall fires once when the threshold trips; resuming beats
        re-arms the worker so a second stall fires again."""
        hits: list[StallReport] = []
        board.beat(0, 3, "compute")
        monitor = HeartbeatMonitor(board, stall_after_s=0.15,
                                   poll_interval_s=0.02,
                                   on_stall=hits.append)
        with monitor:
            deadline = time.monotonic() + 5.0
            while not hits and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(hits) == 1
            assert hits[0].worker == 0
            assert hits[0].rows_done == 3
            # Resume beating: the flag clears...
            board.beat(0, 4, "compute")
            time.sleep(0.1)
            assert len(hits) == 1
            # ...and a fresh silence trips a second report.
            deadline = time.monotonic() + 5.0
            while len(hits) < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(hits) == 2
            assert hits[1].rows_done == 4

    def test_metrics_gauges_and_stall_counter(self, board):
        reg = MetricsRegistry()
        board.beat(0, 12, "send")
        monitor = HeartbeatMonitor(board, stall_after_s=0.05,
                                   poll_interval_s=0.02, metrics=reg)
        monitor.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if reg.counter("worker_stalls").total() >= 1:
                break
            time.sleep(0.02)
        monitor.stop()
        assert reg.counter("worker_stalls").value(device="worker0") == 1
        assert reg.gauge("worker_rows_done").value(device="worker0") == 12

    def test_start_stop_idempotent(self, board):
        monitor = HeartbeatMonitor(board, stall_after_s=10.0)
        assert monitor.start() is monitor
        assert monitor.start() is monitor  # second start is a no-op
        monitor.stop()
        monitor.stop()  # second stop is a no-op
        assert monitor._thread is None

    def test_stop_takes_final_sample(self, board):
        """stop() runs one last tick so short-lived runs still populate
        the metrics even if the poll never fired."""
        reg = MetricsRegistry()
        board.beat(1, 8, "done")
        monitor = HeartbeatMonitor(board, stall_after_s=10.0,
                                   poll_interval_s=60.0, metrics=reg)
        monitor.start()
        monitor.stop()
        assert reg.gauge("worker_rows_done").value(device="worker1") == 8

    def test_status_mirrors_board_snapshot(self, board):
        board.beat(0, 2, "wait")
        monitor = HeartbeatMonitor(board)
        status = monitor.status()
        assert len(status) == 3
        assert isinstance(status[0], ProgressSample)
        assert status[0].rows_done == 2

    def test_default_threshold_exported(self):
        assert DEFAULT_STALL_AFTER_S == 5.0
