"""Stress test: every engine agrees on a non-trivial matrix.

One moderately large compute-mode comparison (1000 x 1200 with indels and
an N-run) pushed through ALL six score paths — monolithic kernel, blocked
executor, pruned blocked executor, simulated multi-GPU chain, cluster
chain, real-process chain — plus the full traceback.  The single most
important end-to-end guarantee of the library, in one test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import NetworkLink
from repro.device import ENV1_HETEROGENEOUS, TESLA_M2090
from repro.multigpu import (
    ChainConfig,
    ClusterChain,
    MatrixWorkload,
    Node,
    align_multi_gpu,
    align_multi_process,
)
from repro.seq import DNA_DEFAULT
from repro.sw import BlockPruner, align_local, compute_blocked, sw_score
from repro.sw.banded import banded_score
from repro.workloads import insert_n_runs, mutate, HUMAN_CHIMP, random_dna


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2024)
    a = random_dna(1000, rng=rng)
    a = insert_n_runs(a, rng=rng, run_count=1, run_fraction=0.02)
    b = mutate(a, HUMAN_CHIMP, rng=rng)[:1200]
    if b.size < 1200:
        b = np.concatenate([b, random_dna(1200 - b.size, rng=rng)])
    return a, b


@pytest.fixture(scope="module")
def reference(workload):
    a, b = workload
    return sw_score(a, b, DNA_DEFAULT)


class TestAllEnginesAgree:
    def test_blocked(self, workload, reference):
        a, b = workload
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=64, block_cols=96)
        assert out.best.score == reference.score
        assert (out.best.row, out.best.col) == (reference.row, reference.col)

    def test_blocked_pruned(self, workload, reference):
        a, b = workload
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=64, block_cols=64,
                              pruner=BlockPruner(match=DNA_DEFAULT.match))
        assert out.best.score == reference.score
        assert out.cells_pruned > 0  # similarity high enough to prune

    def test_multi_gpu_chain(self, workload, reference):
        a, b = workload
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=128))
        assert res.score == reference.score
        assert (res.best.row, res.best.col) == (reference.row, reference.col)

    def test_cluster_chain(self, workload, reference):
        a, b = workload
        nodes = [Node("n0", (TESLA_M2090,), uplink=NetworkLink(gbps=1.25)),
                 Node("n1", (TESLA_M2090, TESLA_M2090))]
        res = ClusterChain(nodes, config=ChainConfig(block_rows=128)).run(
            MatrixWorkload(a, b, DNA_DEFAULT))
        assert res.score == reference.score

    def test_process_chain(self, workload, reference):
        a, b = workload
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=128)
        assert res.score == reference.score
        assert (res.best.row, res.best.col) == (reference.row, reference.col)

    def test_banded_wide(self, workload, reference):
        a, b = workload
        got = banded_score(a, b, DNA_DEFAULT, half_width=400)
        assert got.score == reference.score

    def test_full_traceback(self, workload, reference):
        a, b = workload
        aln = align_local(a, b, DNA_DEFAULT, special_interval=128)
        assert aln.score == reference.score
        aln.validate(a, b, DNA_DEFAULT)
        assert aln.end_i == reference.row + 1
        assert aln.end_j == reference.col + 1
