"""Stress tests: every engine agrees, on fixed and randomized workloads.

Part one: one moderately large compute-mode comparison (1000 x 1200 with
indels and an N-run) pushed through ALL six score paths — monolithic
kernel, blocked executor, pruned blocked executor, simulated multi-GPU
chain, cluster chain, real-process chain — plus the full traceback.

Part two: a hypothesis-driven differential suite that draws the sequences,
the scoring scheme, the worker count, the block height, AND the slab ratio,
then demands bit-identical scores and end points from the naive oracle, the
simulated chain, and the shared-memory process backend.  The single most
important end-to-end guarantee of the library lives in this file.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comm import NetworkLink
from repro.device import ENV1_HETEROGENEOUS, TESLA_M2090
from repro.multigpu import (
    ChainConfig,
    ClusterChain,
    MatrixWorkload,
    MultiGpuChain,
    Node,
    align_multi_gpu,
    align_multi_process,
)
from repro.multigpu.partition import proportional_partition
from repro.seq import DNA_DEFAULT, Scoring
from repro.sw import BlockPruner, align_local, compute_blocked, sw_score, sw_score_naive
from repro.sw.banded import banded_score
from repro.workloads import insert_n_runs, mutate, HUMAN_CHIMP, random_dna


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2024)
    a = random_dna(1000, rng=rng)
    a = insert_n_runs(a, rng=rng, run_count=1, run_fraction=0.02)
    b = mutate(a, HUMAN_CHIMP, rng=rng)[:1200]
    if b.size < 1200:
        b = np.concatenate([b, random_dna(1200 - b.size, rng=rng)])
    return a, b


@pytest.fixture(scope="module")
def reference(workload):
    a, b = workload
    return sw_score(a, b, DNA_DEFAULT)


class TestAllEnginesAgree:
    def test_blocked(self, workload, reference):
        a, b = workload
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=64, block_cols=96)
        assert out.best.score == reference.score
        assert (out.best.row, out.best.col) == (reference.row, reference.col)

    def test_blocked_pruned(self, workload, reference):
        a, b = workload
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=64, block_cols=64,
                              pruner=BlockPruner(match=DNA_DEFAULT.match))
        assert out.best.score == reference.score
        assert out.cells_pruned > 0  # similarity high enough to prune

    def test_multi_gpu_chain(self, workload, reference):
        a, b = workload
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=128))
        assert res.score == reference.score
        assert (res.best.row, res.best.col) == (reference.row, reference.col)

    def test_cluster_chain(self, workload, reference):
        a, b = workload
        nodes = [Node("n0", (TESLA_M2090,), uplink=NetworkLink(gbps=1.25)),
                 Node("n1", (TESLA_M2090, TESLA_M2090))]
        res = ClusterChain(nodes, config=ChainConfig(block_rows=128)).run(
            MatrixWorkload(a, b, DNA_DEFAULT))
        assert res.score == reference.score

    def test_process_chain(self, workload, reference):
        a, b = workload
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=128)
        assert res.score == reference.score
        assert (res.best.row, res.best.col) == (reference.row, reference.col)

    def test_banded_wide(self, workload, reference):
        a, b = workload
        got = banded_score(a, b, DNA_DEFAULT, half_width=400)
        assert got.score == reference.score

    def test_full_traceback(self, workload, reference):
        a, b = workload
        aln = align_local(a, b, DNA_DEFAULT, special_interval=128)
        assert aln.score == reference.score
        aln.validate(a, b, DNA_DEFAULT)
        assert aln.end_i == reference.row + 1
        assert aln.end_j == reference.col + 1


class TestDifferentialRandomized:
    """Hypothesis drives the full configuration space through three engines.

    Every example is one randomized comparison run through (1) the naive
    full-matrix oracle, (2) the simulated device chain with an explicit
    proportional partition, and (3) the shared-memory real-process backend
    with the same slab ratio.  All three must agree bit-exactly on the
    score and on the end point the traceback would start from.
    """

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=24, max_value=140),
        n=st.integers(min_value=36, max_value=180),
        match=st.integers(min_value=1, max_value=4),
        mismatch=st.integers(min_value=-4, max_value=0),
        gap_open=st.integers(min_value=0, max_value=5),
        gap_extend=st.integers(min_value=1, max_value=3),
        workers=st.integers(min_value=1, max_value=3),
        block_rows=st.integers(min_value=5, max_value=64),
        ratios=st.lists(st.floats(min_value=0.5, max_value=4.0),
                        min_size=3, max_size=3),
        homolog=st.booleans(),
    )
    def test_three_engines_bit_identical(self, seed, m, n, match, mismatch,
                                         gap_open, gap_extend, workers,
                                         block_rows, ratios, homolog):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng) if homolog else random_dna(n, rng=rng)
        b = b[:n] if b.size >= n else np.concatenate(
            [b, random_dna(n - b.size, rng=rng)])
        scoring = Scoring(match=match, mismatch=mismatch,
                          gap_open=gap_open, gap_extend=gap_extend)
        weights = ratios[:workers]
        partition = proportional_partition(n, weights)

        want, wi, wj = sw_score_naive(a, b, scoring)

        sim = MultiGpuChain([TESLA_M2090] * workers,
                            config=ChainConfig(block_rows=block_rows),
                            partition=partition).run(
            MatrixWorkload(a, b, scoring))
        assert sim.score == want

        real = align_multi_process(a, b, scoring, workers=workers,
                                   block_rows=block_rows, transport="shm",
                                   weights=weights)
        assert real.score == want
        assert [s.cols for s in real.partition] == [s.cols for s in partition]

        if want > 0:
            assert (sim.best.row, sim.best.col) == (wi, wj)
            assert (real.best.row, real.best.col) == (wi, wj)
