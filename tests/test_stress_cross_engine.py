"""Stress tests: every engine agrees, on fixed and randomized workloads.

Part one: one moderately large compute-mode comparison (1000 x 1200 with
indels and an N-run) pushed through ALL six score paths — monolithic
kernel, blocked executor, pruned blocked executor, simulated multi-GPU
chain, cluster chain, real-process chain — plus the full traceback.

Part two: a hypothesis-driven differential suite that draws the sequences,
the scoring scheme, the worker count, the block height, AND the slab ratio,
then demands bit-identical scores and end points from the naive oracle, the
simulated chain, and the shared-memory process backend.  The single most
important end-to-end guarantee of the library lives in this file.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.single_gpu import run_single_gpu
from repro.comm import NetworkLink
from repro.device import ENV1_HETEROGENEOUS, TESLA_M2090
from repro.multigpu import (
    ChainConfig,
    ClusterChain,
    MatrixWorkload,
    MultiGpuChain,
    Node,
    WorkerPool,
    align_multi_gpu,
    align_multi_process,
)
from repro.multigpu.partition import proportional_partition
from repro.seq import DNA_DEFAULT, Scoring
from repro.sw import (
    BlockJob,
    BlockPruner,
    align_local,
    build_profile,
    compute_blocked,
    grid_specs,
    sw_score,
    sw_score_diagonal,
    sw_score_naive,
    sweep_block,
    sweep_wavefront,
)
from repro.sw.banded import banded_score
from repro.sw.constants import DTYPE
from repro.workloads import insert_n_runs, mutate, HUMAN_CHIMP, random_dna


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(2024)
    a = random_dna(1000, rng=rng)
    a = insert_n_runs(a, rng=rng, run_count=1, run_fraction=0.02)
    b = mutate(a, HUMAN_CHIMP, rng=rng)[:1200]
    if b.size < 1200:
        b = np.concatenate([b, random_dna(1200 - b.size, rng=rng)])
    return a, b


@pytest.fixture(scope="module")
def reference(workload):
    a, b = workload
    return sw_score(a, b, DNA_DEFAULT)


class TestAllEnginesAgree:
    def test_blocked(self, workload, reference):
        a, b = workload
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=64, block_cols=96)
        assert out.best.score == reference.score
        assert (out.best.row, out.best.col) == (reference.row, reference.col)

    def test_blocked_pruned(self, workload, reference):
        a, b = workload
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=64, block_cols=64,
                              pruner=BlockPruner(match=DNA_DEFAULT.match))
        assert out.best.score == reference.score
        assert out.cells_pruned > 0  # similarity high enough to prune

    def test_multi_gpu_chain(self, workload, reference):
        a, b = workload
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=128))
        assert res.score == reference.score
        assert (res.best.row, res.best.col) == (reference.row, reference.col)

    def test_cluster_chain(self, workload, reference):
        a, b = workload
        nodes = [Node("n0", (TESLA_M2090,), uplink=NetworkLink(gbps=1.25)),
                 Node("n1", (TESLA_M2090, TESLA_M2090))]
        res = ClusterChain(nodes, config=ChainConfig(block_rows=128)).run(
            MatrixWorkload(a, b, DNA_DEFAULT))
        assert res.score == reference.score

    def test_process_chain(self, workload, reference):
        a, b = workload
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=128)
        assert res.score == reference.score
        assert (res.best.row, res.best.col) == (reference.row, reference.col)

    def test_banded_wide(self, workload, reference):
        a, b = workload
        got = banded_score(a, b, DNA_DEFAULT, half_width=400)
        assert got.score == reference.score

    def test_full_traceback(self, workload, reference):
        a, b = workload
        aln = align_local(a, b, DNA_DEFAULT, special_interval=128)
        assert aln.score == reference.score
        aln.validate(a, b, DNA_DEFAULT)
        assert aln.end_i == reference.row + 1
        assert aln.end_j == reference.col + 1


class TestDifferentialRandomized:
    """Hypothesis drives the full configuration space through three engines.

    Every example is one randomized comparison run through (1) the naive
    full-matrix oracle, (2) the simulated device chain with an explicit
    proportional partition, and (3) the shared-memory real-process backend
    with the same slab ratio.  All three must agree bit-exactly on the
    score and on the end point the traceback would start from.
    """

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=24, max_value=140),
        n=st.integers(min_value=36, max_value=180),
        match=st.integers(min_value=1, max_value=4),
        mismatch=st.integers(min_value=-4, max_value=0),
        gap_open=st.integers(min_value=0, max_value=5),
        gap_extend=st.integers(min_value=1, max_value=3),
        workers=st.integers(min_value=1, max_value=3),
        block_rows=st.integers(min_value=5, max_value=64),
        ratios=st.lists(st.floats(min_value=0.5, max_value=4.0),
                        min_size=3, max_size=3),
        homolog=st.booleans(),
    )
    def test_three_engines_bit_identical(self, seed, m, n, match, mismatch,
                                         gap_open, gap_extend, workers,
                                         block_rows, ratios, homolog):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng) if homolog else random_dna(n, rng=rng)
        b = b[:n] if b.size >= n else np.concatenate(
            [b, random_dna(n - b.size, rng=rng)])
        scoring = Scoring(match=match, mismatch=mismatch,
                          gap_open=gap_open, gap_extend=gap_extend)
        weights = ratios[:workers]
        partition = proportional_partition(n, weights)

        want, wi, wj = sw_score_naive(a, b, scoring)

        sim = MultiGpuChain([TESLA_M2090] * workers,
                            config=ChainConfig(block_rows=block_rows),
                            partition=partition).run(
            MatrixWorkload(a, b, scoring))
        assert sim.score == want

        real = align_multi_process(a, b, scoring, workers=workers,
                                   block_rows=block_rows, transport="shm",
                                   weights=weights)
        assert real.score == want
        assert [s.cols for s in real.partition] == [s.cols for s in partition]

        if want > 0:
            assert (sim.best.row, sim.best.col) == (wi, wj)
            assert (real.best.row, real.best.col) == (wi, wj)


class TestBatchedKernelDifferential:
    """Hypothesis drives the batched wavefront kernel against the scalar one.

    Two levels: (1) block level — a random wavefront of ragged blocks with
    random boundary state, ``sweep_wavefront`` vs per-job ``sweep_block``,
    bit-exact on every border, corner, and best cell, in local AND global
    mode; (2) matrix level — ``compute_blocked(kernel="batched")`` (with
    and without pruning) vs the scalar executor AND the independent
    anti-diagonal oracle ``sw_score_diagonal``.
    """

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        blocks=st.integers(min_value=1, max_value=6),
        max_rows=st.integers(min_value=1, max_value=40),
        max_cols=st.integers(min_value=1, max_value=40),
        match=st.integers(min_value=1, max_value=4),
        mismatch=st.integers(min_value=-4, max_value=0),
        gap_open=st.integers(min_value=0, max_value=5),
        gap_extend=st.integers(min_value=1, max_value=3),
        local=st.booleans(),
    )
    def test_wavefront_blockwise_bit_identical(self, seed, blocks, max_rows,
                                               max_cols, match, mismatch,
                                               gap_open, gap_extend, local):
        rng = np.random.default_rng(seed)
        scoring = Scoring(match=match, mismatch=mismatch,
                          gap_open=gap_open, gap_extend=gap_extend)
        jobs = []
        for _ in range(blocks):
            rows = int(rng.integers(1, max_rows + 1))
            cols = int(rng.integers(1, max_cols + 1))
            b = rng.integers(0, 5, cols).astype(np.uint8)
            jobs.append(BlockJob(
                a_codes=rng.integers(0, 5, rows).astype(np.uint8),
                profile=build_profile(b, scoring),
                h_top=rng.integers(-80, 90, cols).astype(DTYPE),
                f_top=rng.integers(-150, 60, cols).astype(DTYPE),
                h_left=rng.integers(-80, 90, rows).astype(DTYPE),
                e_left=rng.integers(-150, 60, rows).astype(DTYPE),
                h_diag=int(rng.integers(-80, 90)),
            ))
        results = sweep_wavefront(jobs, scoring, local=local)
        for job, got in zip(jobs, results):
            want = sweep_block(job.a_codes, job.profile, job.h_top, job.f_top,
                               job.h_left, job.e_left, job.h_diag, scoring,
                               local=local)
            np.testing.assert_array_equal(got.h_bottom, want.h_bottom)
            np.testing.assert_array_equal(got.f_bottom, want.f_bottom)
            np.testing.assert_array_equal(got.h_right, want.h_right)
            np.testing.assert_array_equal(got.e_right, want.e_right)
            assert got.corner == want.corner
            assert got.best == want.best

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=3, max_value=130),
        n=st.integers(min_value=3, max_value=170),
        block_rows=st.integers(min_value=1, max_value=48),
        block_cols=st.integers(min_value=1, max_value=48),
        match=st.integers(min_value=1, max_value=4),
        mismatch=st.integers(min_value=-4, max_value=0),
        gap_open=st.integers(min_value=0, max_value=5),
        gap_extend=st.integers(min_value=1, max_value=3),
        homolog=st.booleans(),
        prune=st.booleans(),
    )
    def test_blocked_executor_bit_identical(self, seed, m, n, block_rows,
                                            block_cols, match, mismatch,
                                            gap_open, gap_extend, homolog,
                                            prune):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng) if homolog else random_dna(n, rng=rng)
        b = b[:n] if b.size >= n else np.concatenate(
            [b, random_dna(n - b.size, rng=rng)])
        scoring = Scoring(match=match, mismatch=mismatch,
                          gap_open=gap_open, gap_extend=gap_extend)

        def run(kernel, pruned):
            pruner = BlockPruner(match=scoring.match) if pruned else None
            return compute_blocked(a, b, scoring, block_rows=block_rows,
                                   block_cols=block_cols, pruner=pruner,
                                   kernel=kernel)

        oracle = sw_score_diagonal(a, b, scoring)
        scalar = run("scalar", prune)
        batched = run("batched", prune)
        assert batched.best == scalar.best
        if oracle.score > 0:
            assert batched.best == oracle
        else:
            assert batched.best.row == -1  # no positive cell anywhere


class TestDistributedPruningDifferential:
    """Hypothesis proves distributed pruning is a pure optimisation.

    High-similarity mutated self-comparisons (the workload pruning is for)
    run with pruning on and off through the simulated chain and the
    real-process backend, under both block kernels.  Every combination
    must report the bit-identical score AND end cell; the end cell is
    further cross-checked against the full traceback pipeline
    (``align_local``), so a pruning bug that shifted the optimum's
    endpoint — and thus every stage-2/3 special row downstream — cannot
    hide behind a coincidentally equal score.
    """

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=80, max_value=200),
        workers=st.integers(min_value=1, max_value=3),
        block_rows=st.integers(min_value=8, max_value=48),
        kernel=st.sampled_from(["scalar", "batched"]),
    )
    def test_pruning_on_equals_off(self, seed, m, workers, block_rows, kernel):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        n = int(b.size)
        scoring = DNA_DEFAULT

        ref = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel=kernel))

        sim = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel=kernel,
                               pruning=True))
        assert sim.score == ref.score
        assert (sim.best.row, sim.best.col) == (ref.best.row, ref.best.col)
        assert sim.blocks_checked > 0

        real_off = align_multi_process(a, b, scoring, workers=min(workers, n),
                                       block_rows=block_rows, kernel=kernel)
        real_on = align_multi_process(a, b, scoring, workers=min(workers, n),
                                      block_rows=block_rows, kernel=kernel,
                                      pruning=True)
        assert real_off.score == ref.score
        assert real_on.score == ref.score
        assert (real_on.best.row, real_on.best.col) == \
            (ref.best.row, ref.best.col)
        assert real_on.blocks_checked > 0
        assert not real_off.pruning and real_off.blocks_checked == 0

        # Traceback cross-check: the endpoint every engine agreed on is the
        # one the stage-2/3 pipeline actually walks back from.
        if ref.score > 0:
            aln = align_local(a, b, scoring)
            assert aln.score == ref.score
            assert (aln.end_i - 1, aln.end_j - 1) == \
                (ref.best.row, ref.best.col)


def _counter_total(registry, name: str) -> float:
    fam = registry.snapshot()["counters"].get(name)
    return sum(s["value"] for s in fam["series"]) if fam else 0


class TestHeuristicDifferential:
    """The ``mode="auto"`` contract, differentially, across engines.

    On similar pairs (the <= 5%-divergence traffic the heuristic tier is
    for) auto must return the bit-exact score of the exact engines while
    answering from the banded tier; on divergent pairs the confidence
    check must force an escalation and the final answer must again equal
    exact.  The tier taken is asserted through the metrics registry
    (``heuristic_hits`` / ``escalations``), not just the result fields,
    so the reporting path is pinned too.
    """

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=100, max_value=220),
        workers=st.integers(min_value=1, max_value=3),
        block_rows=st.integers(min_value=16, max_value=64),
        kernel=st.sampled_from(["scalar", "batched"]),
    )
    def test_auto_matches_exact_on_similar_pairs(self, seed, m, workers,
                                                 block_rows, kernel):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        scoring = DNA_DEFAULT
        want, wi, wj = sw_score_naive(a, b, scoring)

        sim = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel=kernel,
                               mode="auto"))
        assert sim.score == want
        assert sim.mode == "auto" and not sim.escalated
        assert sim.tier == "banded"
        assert (sim.best.row, sim.best.col) == (wi, wj)

        real = align_multi_process(
            a, b, scoring, workers=min(workers, int(b.size)),
            block_rows=block_rows, kernel=kernel, mode="auto")
        assert real.score == want
        assert not real.escalated and real.tier == "banded"

        single = run_single_gpu(a, b, scoring, TESLA_M2090,
                                block_rows=block_rows, mode="auto")
        assert single.score == want
        assert not single.escalated

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        workers=st.integers(min_value=1, max_value=3),
        kernel=st.sampled_from(["scalar", "batched"]),
    )
    def test_divergent_pair_escalates_to_exact(self, seed, workers, kernel):
        """Unrelated sequences produce an insignificant heuristic score:
        auto must escalate, and the escalated answer must equal the exact
        engines bit-for-bit."""
        rng = np.random.default_rng(seed)
        a = random_dna(300, rng=rng)
        b = random_dna(300, rng=rng)
        scoring = DNA_DEFAULT
        want, *_ = sw_score_naive(a, b, scoring)

        sim = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=64, kernel=kernel, mode="auto"))
        assert sim.escalated and sim.tier == "exact"
        assert sim.score == want

        real = align_multi_process(a, b, scoring, workers=workers,
                                   block_rows=64, kernel=kernel, mode="auto")
        assert real.escalated and real.tier == "exact"
        assert real.score == want

    def test_heuristic_hit_recorded_once(self, rng):
        """A similar-pair auto run answers from the heuristic tier:
        exactly one ``heuristic_hits``, zero ``escalations``, and one
        ``alignments_total`` (the sub-run must not double-finalize)."""
        from repro.obs import MetricsRegistry

        a = random_dna(400, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        for run in (
            lambda reg: align_multi_gpu(
                a, b, DNA_DEFAULT, [TESLA_M2090] * 2,
                config=ChainConfig(block_rows=64, mode="auto"), metrics=reg),
            lambda reg: align_multi_process(
                a, b, DNA_DEFAULT, workers=2, block_rows=64, mode="auto",
                metrics=reg),
            lambda reg: run_single_gpu(
                a, b, DNA_DEFAULT, TESLA_M2090, block_rows=64, mode="auto",
                metrics=reg),
        ):
            registry = MetricsRegistry()
            res = run(registry)
            assert not res.escalated
            assert _counter_total(registry, "heuristic_hits") == 1
            assert _counter_total(registry, "escalations") == 0
            assert _counter_total(registry, "alignments_total") == 1

    def test_escalation_recorded_once(self, rng):
        """A divergent-pair auto run records exactly one escalation and
        still finalizes run-level metrics once."""
        from repro.obs import MetricsRegistry

        a = random_dna(400, rng=rng)
        b = random_dna(400, rng=rng)
        registry = MetricsRegistry()
        res = align_multi_gpu(
            a, b, DNA_DEFAULT, [TESLA_M2090] * 2,
            config=ChainConfig(block_rows=64, mode="auto"), metrics=registry)
        assert res.escalated
        assert _counter_total(registry, "escalations") == 1
        assert _counter_total(registry, "heuristic_hits") == 0
        assert _counter_total(registry, "alignments_total") == 1

    def test_banded_mode_skips_blocks(self, rng):
        """``mode="banded"`` must actually skip off-band blocks on both
        multi-engine backends — counted on the result AND in the metrics
        registry — while still matching exact on a similar pair."""
        from repro.obs import MetricsRegistry

        a = random_dna(900, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)

        registry = MetricsRegistry()
        sim = align_multi_gpu(
            a, b, DNA_DEFAULT, [TESLA_M2090] * 3,
            config=ChainConfig(block_rows=96, mode="banded", band_width=64),
            metrics=registry)
        assert sim.score == want
        assert sim.blocks_skipped_band > 0
        assert _counter_total(registry, "blocks_skipped_band") == \
            sim.blocks_skipped_band

        registry = MetricsRegistry()
        real = align_multi_process(a, b, DNA_DEFAULT, workers=2,
                                   block_rows=96, mode="banded",
                                   band_width=64, metrics=registry)
        assert real.score == want
        assert real.blocks_skipped_band > 0
        assert _counter_total(registry, "blocks_skipped_band") == \
            real.blocks_skipped_band

    def test_banded_compounds_with_pruning(self, rng):
        """Band skipping and distributed pruning are disjoint counters
        that compose.  The band handles off-diagonal blocks; to make
        pruning fire *in-band* the pair shares a strong prefix and then
        diverges — once the prefix seals a high best score, the divergent
        tail's diagonal blocks cannot beat it and are pruned."""
        prefix = random_dna(1200, rng=rng)
        a = np.concatenate([prefix, random_dna(1200, rng=rng)])
        b = np.concatenate([prefix, random_dna(1200, rng=rng)])
        exact = align_multi_gpu(a, b, DNA_DEFAULT, [TESLA_M2090] * 3,
                                config=ChainConfig(block_rows=96))
        want = exact.score
        res = align_multi_gpu(
            a, b, DNA_DEFAULT, [TESLA_M2090] * 3,
            config=ChainConfig(block_rows=96, mode="banded", band_width=64,
                               pruning=True))
        assert res.score == want
        assert res.blocks_skipped_band > 0
        assert res.blocks_pruned > 0
        # Disjoint: a skipped block is never also counted as pruned.
        per_gpu_total = sum(g.blocks_checked for g in res.gpus)
        assert res.blocks_pruned <= per_gpu_total


class TestDpDtypeDifferential:
    """Narrow DP dtypes are bit-identical to int32 across every engine.

    The same drawn workload runs through the simulated chain, the
    real-process chain, and the persistent worker pool under both block
    kernels, once wide and once narrow; scores AND end cells must match
    exactly.  A second suite repeats the exercise with a hot scoring
    scheme that forces mid-sweep escalations, so the recompute path is
    held to the same standard — and the escalations are visible in the
    engine counters.
    """

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=80, max_value=180),
        workers=st.integers(min_value=1, max_value=3),
        block_rows=st.integers(min_value=8, max_value=48),
        kernel=st.sampled_from(["scalar", "batched"]),
        dtype=st.sampled_from(["int16", "auto"]),
    )
    def test_narrow_matches_wide_across_engines(self, seed, m, workers,
                                                block_rows, kernel, dtype):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        scoring = DNA_DEFAULT

        ref = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel=kernel,
                               dp_dtype="int32"))
        assert ref.dp_dtype == "int32"

        sim = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel=kernel,
                               dp_dtype=dtype))
        assert sim.score == ref.score
        assert (sim.best.row, sim.best.col) == (ref.best.row, ref.best.col)
        assert sim.dp_dtype != "int32"  # small matrices always fit narrow
        assert sim.blocks_narrow > 0 and sim.dtype_escalations == 0

        real = align_multi_process(a, b, scoring, workers=workers,
                                   block_rows=block_rows, kernel=kernel,
                                   dp_dtype=dtype)
        assert real.score == ref.score
        assert (real.best.row, real.best.col) == (ref.best.row, ref.best.col)
        assert real.dp_dtype == sim.dp_dtype

        with WorkerPool(workers, max_block_rows=max(block_rows, 8)) as pool:
            pooled = pool.align(a, b, scoring, block_rows=block_rows,
                                kernel=kernel, dp_dtype=dtype)
        assert pooled.score == ref.score
        assert (pooled.best.row, pooled.best.col) == \
            (ref.best.row, ref.best.col)

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        workers=st.integers(min_value=1, max_value=2),
        kernel=st.sampled_from(["scalar", "batched"]),
    )
    def test_forced_escalation_stays_exact(self, seed, workers, kernel):
        # per-cell gain 1500 overwhelms the int16 overflow cap on any
        # decent diagonal run, so narrow attempts must escalate mid-run
        hot = Scoring(match=1500, mismatch=-3, gap_open=3, gap_extend=2)
        rng = np.random.default_rng(seed)
        a = random_dna(160, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)

        ref = align_multi_gpu(
            a, b, hot, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=32, kernel=kernel,
                               dp_dtype="int32"))
        sim = align_multi_gpu(
            a, b, hot, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=32, kernel=kernel,
                               dp_dtype="int16"))
        assert sim.score == ref.score
        assert (sim.best.row, sim.best.col) == (ref.best.row, ref.best.col)
        assert sim.dtype_escalations > 0
        # every computed block is accounted narrow or wide, never both
        assert sim.blocks_narrow + sim.blocks_wide == \
            sum(g.blocks_narrow + g.blocks_wide for g in sim.gpus) > 0

        real = align_multi_process(a, b, hot, workers=workers,
                                   block_rows=32, kernel=kernel,
                                   dp_dtype="int16")
        assert real.score == ref.score
        assert real.dtype_escalations > 0

    def test_auto_stays_wide_when_scores_could_overflow(self, rng):
        # megabase-scale dims: match * min(m, n) tops the int16 cap, so
        # auto must refuse to go narrow (the never-slower guarantee)
        a = random_dna(300, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        res = align_multi_gpu(a, b, DNA_DEFAULT, [TESLA_M2090],
                              config=ChainConfig(block_rows=64))
        assert res.dp_dtype in ("int8", "int16")  # this one fits fine
        big = ChainConfig(block_rows=64, dp_dtype="auto")
        from repro.sw.constants import resolve_dp_dtype
        assert resolve_dp_dtype(big.dp_dtype, DNA_DEFAULT, block_cols=2048,
                                m=10**7, n=10**7).name == "int32"


class TestCompiledDifferential:
    """The compiled backend agrees bit-exactly with the scalar kernel on
    every engine, in every mode, under every DP dtype — including the
    pruned and forced-escalation paths.

    On machines without numba these tests exercise the oracle fallback
    (the NumPy kernels under the Kogge–Stone scan engine), which is the
    compiled path's reference semantics; the CI numba leg runs the same
    suite through the real JIT.  Either way the contract is identical:
    ``kernel="compiled"`` may only change *when* a cell is computed,
    never *what* it evaluates to.
    """

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        m=st.integers(min_value=80, max_value=180),
        workers=st.integers(min_value=1, max_value=3),
        block_rows=st.integers(min_value=8, max_value=48),
        dtype=st.sampled_from(["int32", "int16", "auto"]),
        prune=st.booleans(),
    )
    def test_compiled_matches_scalar_across_engines(self, seed, m, workers,
                                                    block_rows, dtype, prune):
        rng = np.random.default_rng(seed)
        a = random_dna(m, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        scoring = DNA_DEFAULT

        ref = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel="scalar",
                               pruning=prune, dp_dtype=dtype))

        sim = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=block_rows, kernel="compiled",
                               pruning=prune, dp_dtype=dtype))
        assert sim.score == ref.score
        assert (sim.best.row, sim.best.col) == (ref.best.row, ref.best.col)
        assert sim.dp_dtype == ref.dp_dtype
        assert sim.blocks_narrow == ref.blocks_narrow
        assert sim.dtype_escalations == ref.dtype_escalations

        real = align_multi_process(a, b, scoring, workers=workers,
                                   block_rows=block_rows, kernel="compiled",
                                   pruning=prune, dp_dtype=dtype)
        assert real.score == ref.score
        assert (real.best.row, real.best.col) == (ref.best.row, ref.best.col)
        assert real.dp_dtype == ref.dp_dtype

        single = run_single_gpu(a, b, scoring, TESLA_M2090,
                                block_rows=block_rows, kernel="compiled",
                                dp_dtype=dtype)
        assert single.score == ref.score
        assert (single.best.row, single.best.col) == \
            (ref.best.row, ref.best.col)
        assert single.kernel == "compiled"

        with WorkerPool(workers, max_block_rows=max(block_rows, 8)) as pool:
            pooled = pool.align(a, b, scoring, block_rows=block_rows,
                                kernel="compiled", pruning=prune,
                                dp_dtype=dtype)
        assert pooled.score == ref.score
        assert (pooled.best.row, pooled.best.col) == \
            (ref.best.row, ref.best.col)

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        workers=st.integers(min_value=1, max_value=2),
        mode=st.sampled_from(["banded", "auto"]),
    )
    def test_compiled_heuristic_modes_match_scalar(self, seed, workers, mode):
        rng = np.random.default_rng(seed)
        a = random_dna(160, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)
        scoring = DNA_DEFAULT

        ref = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=32, kernel="scalar", mode=mode))
        sim = align_multi_gpu(
            a, b, scoring, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=32, kernel="compiled", mode=mode))
        assert sim.score == ref.score
        assert sim.tier == ref.tier and sim.escalated == ref.escalated

        real = align_multi_process(a, b, scoring, workers=workers,
                                   block_rows=32, kernel="compiled",
                                   mode=mode)
        assert real.score == ref.score
        assert real.tier == ref.tier

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        workers=st.integers(min_value=1, max_value=2),
    )
    def test_compiled_forced_escalation_stays_exact(self, seed, workers):
        # per-cell gain 1500 overwhelms the int16 cap mid-run: the
        # compiled kernel must take the same escalations as scalar and
        # land on the same bits.
        hot = Scoring(match=1500, mismatch=-3, gap_open=3, gap_extend=2)
        rng = np.random.default_rng(seed)
        a = random_dna(160, rng=rng)
        b = mutate(a, HUMAN_CHIMP, rng=rng)

        ref = align_multi_gpu(
            a, b, hot, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=32, kernel="scalar",
                               dp_dtype="int16"))
        sim = align_multi_gpu(
            a, b, hot, [TESLA_M2090] * workers,
            config=ChainConfig(block_rows=32, kernel="compiled",
                               dp_dtype="int16"))
        assert sim.score == ref.score
        assert (sim.best.row, sim.best.col) == (ref.best.row, ref.best.col)
        assert sim.dtype_escalations == ref.dtype_escalations > 0
        assert sim.blocks_narrow == ref.blocks_narrow
        assert sim.blocks_wide == ref.blocks_wide

        real = align_multi_process(a, b, hot, workers=workers,
                                   block_rows=32, kernel="compiled",
                                   dp_dtype="int16")
        assert real.score == ref.score
        assert real.dtype_escalations > 0
