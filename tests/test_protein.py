"""Unit tests: repro.seq.protein — BLOSUM62 scoring through the generic kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScoringError, SequenceError
from repro.seq import (
    AMINO_ACIDS,
    BLOSUM62,
    BLOSUM62_SCORING,
    CustomScoring,
    decode_protein,
    encode_protein,
)
from repro.sw import align_local, sw_score, sw_score_naive
from repro.sw.myers_miller import align_global


class TestProteinAlphabet:
    def test_roundtrip(self):
        text = "MKVLAWRX"
        assert decode_protein(encode_protein(text)) == text

    def test_lowercase_and_unknown(self):
        assert decode_protein(encode_protein("mkv*")) == "MKVX"

    def test_ambiguity_codes(self):
        # B→N, Z→Q, J→L, U→C, O→K
        assert decode_protein(encode_protein("BZJUO")) == "NQLCK"

    def test_decode_rejects_bad(self):
        with pytest.raises(SequenceError):
            decode_protein(np.array([99], dtype=np.uint8))

    def test_encode_rejects_bad_type(self):
        with pytest.raises(SequenceError):
            encode_protein(123)  # type: ignore[arg-type]


class TestBlosum62:
    def test_shape_and_symmetry(self):
        assert BLOSUM62.shape == (21, 21)
        assert np.array_equal(BLOSUM62, BLOSUM62.T)

    @pytest.mark.parametrize("pair,score", [
        ("WW", 11), ("CC", 9), ("AA", 4), ("AR", -1), ("WG", -2), ("HH", 8),
    ])
    def test_spot_values(self, pair, score):
        i = AMINO_ACIDS.index(pair[0])
        j = AMINO_ACIDS.index(pair[1])
        assert BLOSUM62[i, j] == score

    def test_x_penalised(self):
        x = AMINO_ACIDS.index("X")
        assert (BLOSUM62[x, :] == -1).all()


class TestCustomScoring:
    def test_protocol_fields(self):
        assert BLOSUM62_SCORING.match == 11  # best diagonal (W-W)
        assert BLOSUM62_SCORING.gap_first == 11
        assert BLOSUM62_SCORING.gap_cost(3) == 13
        with pytest.raises(ScoringError):
            BLOSUM62_SCORING.gap_cost(-1)

    def test_validation(self):
        with pytest.raises(ScoringError):
            CustomScoring(matrix=np.zeros((3, 4), dtype=np.int32))
        asym = np.zeros((3, 3), dtype=np.int32)
        asym[0, 1] = 5
        with pytest.raises(ScoringError):
            CustomScoring(matrix=asym)
        with pytest.raises(ScoringError):
            CustomScoring(matrix=-np.ones((3, 3), dtype=np.int32))
        with pytest.raises(ScoringError):
            CustomScoring(matrix=np.eye(3, dtype=np.int32), gap_extend=0)


class TestProteinAlignment:
    def test_kernel_matches_oracle(self, rng):
        for _ in range(25):
            m = int(rng.integers(1, 30))
            n = int(rng.integers(1, 30))
            a = rng.integers(0, 21, m).astype(np.uint8)
            b = rng.integers(0, 21, n).astype(np.uint8)
            want, *_ = sw_score_naive(a, b, BLOSUM62_SCORING)
            got = sw_score(a, b, BLOSUM62_SCORING)
            assert (got.score if got.row >= 0 else 0) == want

    def test_full_pipeline_on_protein(self, rng):
        a = encode_protein("MKVLAWGRCNDEQHILFPSTYV" * 8)
        b = a.copy()
        mask = rng.random(a.size) < 0.1
        b[mask] = (b[mask] + 7) % 20
        aln = align_local(a, b, BLOSUM62_SCORING)
        aln.validate(a, b, BLOSUM62_SCORING)
        assert aln.score > 0

    def test_global_protein_alignment(self, rng):
        a = encode_protein("MKWVTFISLLLLFSSAYS")
        b = encode_protein("MKWVTFISLAYS")
        aln = align_global(a, b, BLOSUM62_SCORING, base_cells=16)
        aln.validate(a, b, BLOSUM62_SCORING)
        counts = aln.op_counts()
        assert counts["M"] + counts["D"] == a.size

    def test_known_blast_style_case(self):
        """Identical peptides score the sum of their diagonal entries."""
        text = "HEAGAWGHEE"
        a = encode_protein(text)
        got = sw_score(a, a, BLOSUM62_SCORING)
        want = sum(int(BLOSUM62[c, c]) for c in a)
        assert got.score == want
