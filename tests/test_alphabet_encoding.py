"""Unit tests: repro.seq.alphabet and repro.seq.encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import alphabet, encoding


class TestAlphabet:
    def test_base_codes_are_stable(self):
        assert alphabet.BASES == "ACGTN"
        assert (alphabet.A, alphabet.C, alphabet.G, alphabet.T, alphabet.N) == (0, 1, 2, 3, 4)

    def test_complement_is_involution_on_acgt(self):
        codes = np.arange(4, dtype=np.uint8)
        twice = alphabet.COMPLEMENT[alphabet.COMPLEMENT[codes]]
        assert np.array_equal(twice, codes)

    def test_complement_of_n_is_n(self):
        assert alphabet.COMPLEMENT[alphabet.N] == alphabet.N

    def test_is_valid_code_array_accepts_good(self):
        assert alphabet.is_valid_code_array(np.array([0, 3, 4], dtype=np.uint8))
        assert alphabet.is_valid_code_array(np.array([], dtype=np.uint8))

    @pytest.mark.parametrize(
        "arr",
        [
            np.array([0, 5], dtype=np.uint8),          # out of range
            np.array([0, 1], dtype=np.int32),           # wrong dtype
            np.array([[0], [1]], dtype=np.uint8),       # wrong ndim
            [0, 1],                                     # not an ndarray
        ],
    )
    def test_is_valid_code_array_rejects_bad(self, arr):
        assert not alphabet.is_valid_code_array(arr)


class TestEncode:
    def test_encode_basic(self):
        assert encoding.encode("ACGTN").tolist() == [0, 1, 2, 3, 4]

    def test_encode_lowercase(self):
        assert encoding.encode("acgt").tolist() == [0, 1, 2, 3]

    def test_encode_bytes_input(self):
        assert encoding.encode(b"AC").tolist() == [0, 1]

    def test_encode_passthrough_code_array(self):
        codes = np.array([0, 1, 2], dtype=np.uint8)
        assert encoding.encode(codes) is codes

    def test_encode_rejects_bad_code_array(self):
        with pytest.raises(SequenceError):
            encoding.encode(np.array([9], dtype=np.uint8))

    def test_lenient_maps_unknown_to_n(self):
        assert encoding.encode("AXZ!").tolist() == [0, 4, 4, 4]

    def test_iupac_ambiguity_becomes_n(self):
        assert encoding.encode("RYSWKM").tolist() == [4] * 6

    def test_strict_rejects_unknown(self):
        with pytest.raises(SequenceError, match="invalid base"):
            encoding.encode("AC!", strict=True)

    def test_strict_accepts_iupac_as_n(self):
        assert encoding.encode("RN", strict=True).tolist() == [4, 4]

    def test_encode_empty(self):
        assert encoding.encode("").size == 0

    def test_encode_rejects_other_types(self):
        with pytest.raises(SequenceError):
            encoding.encode(1234)  # type: ignore[arg-type]


class TestDecode:
    def test_roundtrip(self):
        text = "ACGTNACGT"
        assert encoding.decode(encoding.encode(text)) == text

    def test_decode_rejects_bad_array(self):
        with pytest.raises(SequenceError):
            encoding.decode(np.array([7], dtype=np.uint8))


class TestReverseComplement:
    def test_known_value(self):
        rc = encoding.reverse_complement(encoding.encode("AACGTT"))
        assert encoding.decode(rc) == "AACGTT"  # palindrome
        rc2 = encoding.reverse_complement(encoding.encode("AAAC"))
        assert encoding.decode(rc2) == "GTTT"

    def test_involution(self):
        codes = encoding.encode("ACGTNNAGCT")
        assert np.array_equal(
            encoding.reverse_complement(encoding.reverse_complement(codes)), codes
        )

    def test_rejects_bad(self):
        with pytest.raises(SequenceError):
            encoding.reverse_complement(np.array([9], dtype=np.uint8))


class TestPack2Bit:
    def test_roundtrip_with_n(self):
        codes = encoding.encode("ACGTNACGTNNA")
        packed, mask, length = encoding.pack_2bit(codes)
        assert length == codes.size
        assert np.array_equal(encoding.unpack_2bit(packed, mask, length), codes)

    def test_packing_is_4x_dense(self):
        codes = encoding.encode("ACGT" * 100)
        packed, _mask, _n = encoding.pack_2bit(codes)
        assert packed.size == 100

    def test_unaligned_lengths(self):
        for n in range(9):
            codes = encoding.encode("ACGTNAC"[:n] if n <= 7 else "ACGTNACG")
            packed, mask, length = encoding.pack_2bit(codes)
            assert np.array_equal(encoding.unpack_2bit(packed, mask, length), codes)

    def test_empty(self):
        packed, mask, length = encoding.pack_2bit(np.array([], dtype=np.uint8))
        assert length == 0
        assert encoding.unpack_2bit(packed, mask, 0).size == 0

    def test_negative_length_rejected(self):
        with pytest.raises(SequenceError):
            encoding.unpack_2bit(np.array([], dtype=np.uint8), np.array([], dtype=np.uint8), -1)
