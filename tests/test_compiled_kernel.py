"""Compiled backend unit tests: scan helpers, registry, fallback, warmup.

Four layers, bottom up:

* the Kogge–Stone prefix-max is *property-tested* against
  ``np.maximum.accumulate`` (hypothesis draws the values and dtype), and
  the shared E-scan helpers are pinned to a hand-written sequential
  reference of Gotoh's horizontal recurrence;
* the kernel backend registry: capability probing, the strict
  (``require_kernel``) vs degrading (``resolve_kernel("auto")``)
  resolution split, and the numba-absent import shim;
* ``sweep_block_compiled`` differentially against ``sweep_block`` for
  every dtype policy, mode, and the forced-escalation path — these run
  identically with or without numba (the oracle fallback IS the
  contract);
* the warmup hook: idempotence, the ``MGSW_WARMUP_DELAY`` test injector,
  and the end-to-end telemetry guarantee that compile time lands in
  ``warmup`` tracer spans and never in compute spans (pool and
  one-shot process engines).
"""

from __future__ import annotations

import importlib
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, Scoring
from repro.sw import backend, compiled
from repro.sw.blocks import compute_blocked
from repro.sw.constants import DTYPE, get_policy
from repro.sw.kernel import build_profile, local_boundaries, sweep_block
from repro.sw.naive import sw_score_naive
from repro.sw.batched import BlockJob, sweep_wavefront
from repro.sw.pruning import BlockPruner
from repro.sw.scan import (
    SCAN_ENGINES,
    escan_row,
    escan_segmented,
    kogge_stone_max,
    prefix_max,
    scan_engine,
    use_scan_engine,
)
from repro.workloads import random_dna

from helpers import mutated_copy, random_codes

INT_DTYPES = (np.int16, np.int32, np.int64)


# ---------------------------------------------------------------------------
# prefix-max property
# ---------------------------------------------------------------------------

class TestPrefixMax:
    @settings(max_examples=60, deadline=None)
    @given(vals=st.lists(st.integers(min_value=-120, max_value=120),
                         min_size=1, max_size=200),
           dtype=st.sampled_from(INT_DTYPES))
    def test_kogge_stone_matches_accumulate_1d(self, vals, dtype):
        x = np.array(vals, dtype=dtype)
        want = np.maximum.accumulate(x.copy())
        got = kogge_stone_max(x.copy())
        np.testing.assert_array_equal(got, want)
        assert got.dtype == dtype

    @settings(max_examples=40, deadline=None)
    @given(b=st.integers(min_value=1, max_value=6),
           w=st.integers(min_value=1, max_value=40),
           dtype=st.sampled_from(INT_DTYPES),
           data=st.data())
    def test_kogge_stone_matches_accumulate_segmented(self, b, w, dtype, data):
        vals = data.draw(st.lists(
            st.integers(min_value=-120, max_value=120),
            min_size=b * w, max_size=b * w))
        x = np.array(vals, dtype=dtype).reshape(b, w)
        want = np.maximum.accumulate(x.copy(), axis=1)
        got = kogge_stone_max(x.copy(), axis=1)
        np.testing.assert_array_equal(got, want)
        # Lanes are independent: no cross-lane leakage along axis 0.
        want0 = np.maximum.accumulate(x.copy(), axis=0)
        got0 = kogge_stone_max(x.copy(), axis=0)
        np.testing.assert_array_equal(got0, want0)

    def test_single_element_and_inplace(self):
        x = np.array([7], dtype=np.int32)
        assert kogge_stone_max(x) is x and x[0] == 7

    def test_prefix_max_engine_dispatch(self, rng):
        x = rng.integers(-50, 50, 33).astype(np.int32)
        seq = prefix_max(x.copy(), engine="sequential")
        ks = prefix_max(x.copy(), engine="kogge_stone")
        np.testing.assert_array_equal(seq, ks)
        with pytest.raises(ConfigError):
            prefix_max(x.copy(), engine="warp_shuffle")

    def test_use_scan_engine_scopes_and_restores(self):
        assert scan_engine() in SCAN_ENGINES
        prev = scan_engine()
        with use_scan_engine("kogge_stone"):
            assert scan_engine() == "kogge_stone"
        assert scan_engine() == prev
        with pytest.raises(ConfigError):
            with use_scan_engine("nope"):
                pass


# ---------------------------------------------------------------------------
# E-scan helpers vs the sequential reference recurrence
# ---------------------------------------------------------------------------

def _escan_reference(temp, h_left_i, e_left_i, open_, ext):
    """Gotoh's horizontal recurrence, evaluated cell by cell in Python
    ints: ``E[j] = max(E[j-1], H_final[j-1] - open) - ext`` seeded by the
    left border.  The ground truth for both helper layouts."""
    out = []
    prev_e, prev_h = int(e_left_i), int(h_left_i)
    for j in range(temp.size):
        cur = max(prev_e, prev_h - int(open_)) - int(ext)
        out.append(cur)
        prev_e, prev_h = cur, int(temp[j])
    return np.array(out)


class TestEscanHelpers:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           w=st.integers(min_value=1, max_value=64),
           open_=st.integers(min_value=0, max_value=5),
           ext=st.integers(min_value=1, max_value=3),
           engine=st.sampled_from(SCAN_ENGINES),
           dtype=st.sampled_from(INT_DTYPES))
    def test_escan_row_matches_reference(self, seed, w, open_, ext, engine,
                                         dtype):
        rng = np.random.default_rng(seed)
        temp = rng.integers(-60, 60, w).astype(dtype)
        h_left_i = dtype(rng.integers(-60, 60))
        e_left_i = dtype(rng.integers(-60, 60))
        j_ext = (np.arange(w, dtype=dtype) * dtype(ext)).astype(dtype)
        scan = np.empty(w, dtype=dtype)
        e_row = np.empty(w, dtype=dtype)
        with use_scan_engine(engine):
            escan_row(temp, h_left_i, e_left_i, dtype(open_), dtype(ext),
                      j_ext, scan, e_row)
        want = _escan_reference(temp, h_left_i, e_left_i, open_, ext)
        np.testing.assert_array_equal(e_row.astype(np.int64), want)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           b=st.integers(min_value=1, max_value=5),
           w=st.integers(min_value=1, max_value=48),
           open_=st.integers(min_value=0, max_value=5),
           ext=st.integers(min_value=1, max_value=3),
           engine=st.sampled_from(SCAN_ENGINES))
    def test_escan_segmented_matches_rowwise(self, seed, b, w, open_, ext,
                                             engine):
        dtype = DTYPE
        rng = np.random.default_rng(seed)
        temp = rng.integers(-60, 60, (b, w)).astype(dtype)
        h_left_col = rng.integers(-60, 60, b).astype(dtype)
        e_left_col = rng.integers(-60, 60, b).astype(dtype)
        j_ext = (np.arange(w, dtype=dtype) * dtype(ext)).astype(dtype)
        scan = np.empty((b, w), dtype=dtype)
        e_row = np.empty((b, w), dtype=dtype)
        e0 = np.empty(b, dtype=dtype)
        with use_scan_engine(engine):
            escan_segmented(temp, h_left_col, e_left_col, dtype(open_),
                            dtype(ext), j_ext, scan, e_row, e0)
        for lane in range(b):
            want = _escan_reference(temp[lane], h_left_col[lane],
                                    e_left_col[lane], open_, ext)
            np.testing.assert_array_equal(e_row[lane].astype(np.int64), want)


# ---------------------------------------------------------------------------
# backend registry / capability probing
# ---------------------------------------------------------------------------

class TestBackendRegistry:
    def test_kernel_universe(self):
        assert backend.KERNELS == ("scalar", "batched", "compiled")
        assert backend.KERNEL_CHOICES == ("auto",) + backend.KERNELS
        for k in backend.CORE_KERNELS:
            assert k in backend.available_kernels()

    def test_validate_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown kernel"):
            backend.validate_kernel("vectorised")
        # membership only: compiled passes even where numba is absent
        assert backend.validate_kernel("compiled") == "compiled"

    def test_without_numba_require_errors_and_auto_degrades(self, monkeypatch):
        monkeypatch.setattr(backend, "NUMBA", None)
        compiled.reset_jit()
        try:
            assert backend.available_kernels() == ("scalar", "batched")
            assert not backend.numba_available()
            with pytest.raises(ConfigError, match="numba"):
                backend.require_kernel("compiled")
            assert backend.resolve_kernel("auto") == "batched"
            assert backend.resolve_kernel("scalar") == "scalar"
            assert backend.resolve_kernel("batched") == "batched"
        finally:
            compiled.reset_jit()

    def test_with_numba_auto_prefers_compiled(self, monkeypatch):
        monkeypatch.setattr(backend, "NUMBA", object())  # fake probe success
        compiled.reset_jit()
        try:
            assert backend.available_kernels() == backend.KERNELS
            assert backend.require_kernel("compiled") == "compiled"
            assert backend.resolve_kernel("auto") == "compiled"
        finally:
            compiled.reset_jit()

    def test_broken_numba_degrades_to_oracle_once(self, monkeypatch, rng):
        """A numba whose jit build fails must not take the library down:
        the failure is sticky, ``jit_available()`` answers False, and the
        sweep transparently runs the bit-identical oracle."""
        monkeypatch.setattr(backend, "NUMBA", object())
        compiled.reset_jit()
        try:
            assert not compiled.jit_available()
            a = random_codes(rng, 24)
            b = random_codes(rng, 30)
            profile = build_profile(b, DNA_DEFAULT)
            h_top, f_top, h_left, e_left, corner = local_boundaries(24, 30)
            got = compiled.sweep_block_compiled(
                a, profile, h_top, f_top, h_left, e_left, corner, DNA_DEFAULT)
            want = sweep_block(a, profile, h_top, f_top, h_left, e_left,
                               corner, DNA_DEFAULT)
            assert got.best == want.best
            np.testing.assert_array_equal(got.h_bottom, want.h_bottom)
        finally:
            compiled.reset_jit()

    def test_numba_absent_import_shim(self):
        """Reloading the registry under a poisoned ``sys.modules`` entry
        (raises on import, exactly like an uninstalled numba) must leave
        a working degraded registry — and a second clean reload restores
        whatever this machine actually has."""
        with pytest.MonkeyPatch.context() as mp:
            mp.setitem(sys.modules, "numba", None)  # import raises ImportError
            importlib.reload(backend)
            assert backend.NUMBA is None
            assert backend.available_kernels() == ("scalar", "batched")
            with pytest.raises(ConfigError, match="numba"):
                backend.require_kernel("compiled")
        importlib.reload(backend)
        compiled.reset_jit()

    def test_mgsw_no_numba_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("MGSW_NO_NUMBA", "1")
        assert backend._probe_numba() is None
        monkeypatch.setenv("MGSW_NO_CUPY", "1")
        assert backend._probe_cupy() is None


# ---------------------------------------------------------------------------
# compiled sweep vs scalar kernel (runs with or without numba)
# ---------------------------------------------------------------------------

def _assert_block_equal(got, want):
    np.testing.assert_array_equal(got.h_bottom, want.h_bottom)
    np.testing.assert_array_equal(got.f_bottom, want.f_bottom)
    np.testing.assert_array_equal(got.h_right, want.h_right)
    np.testing.assert_array_equal(got.e_right, want.e_right)
    assert got.corner == want.corner
    assert got.best == want.best
    assert got.dtype == want.dtype
    assert got.escalated == want.escalated


class TestCompiledSweepDifferential:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           rows=st.integers(min_value=1, max_value=40),
           cols=st.integers(min_value=1, max_value=40),
           local=st.booleans(),
           dp_name=st.sampled_from(["int32", "int16", "int8"]))
    def test_local_boundaries_all_dtypes(self, seed, rows, cols, local,
                                         dp_name):
        rng = np.random.default_rng(seed)
        a = random_codes(rng, rows, with_n=True)
        b = random_codes(rng, cols, with_n=True)
        profile = build_profile(b, DNA_DEFAULT)
        h_top, f_top, h_left, e_left, corner = local_boundaries(rows, cols)
        pol = get_policy(dp_name)
        dp = pol if pol.narrow and cols <= pol.max_width(DNA_DEFAULT) else None
        got = compiled.sweep_block_compiled(
            a, profile, h_top, f_top, h_left, e_left, corner, DNA_DEFAULT,
            local=local, dp=dp)
        want = sweep_block(a, profile, h_top, f_top, h_left, e_left, corner,
                           DNA_DEFAULT, local=local, dp=dp)
        _assert_block_equal(got, want)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           rows=st.integers(min_value=1, max_value=32),
           cols=st.integers(min_value=1, max_value=32),
           local=st.booleans())
    def test_random_interior_boundaries(self, seed, rows, cols, local):
        """Mid-matrix blocks: arbitrary (negative-going) border state."""
        rng = np.random.default_rng(seed)
        a = random_codes(rng, rows)
        b = random_codes(rng, cols)
        profile = build_profile(b, DNA_DEFAULT)
        h_top = rng.integers(-80, 90, cols).astype(DTYPE)
        f_top = rng.integers(-150, 60, cols).astype(DTYPE)
        h_left = rng.integers(-80, 90, rows).astype(DTYPE)
        e_left = rng.integers(-150, 60, rows).astype(DTYPE)
        corner = int(rng.integers(-80, 90))
        got = compiled.sweep_block_compiled(
            a, profile, h_top, f_top, h_left, e_left, corner, DNA_DEFAULT,
            local=local)
        want = sweep_block(a, profile, h_top, f_top, h_left, e_left, corner,
                           DNA_DEFAULT, local=local)
        _assert_block_equal(got, want)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_forced_int16_escalation_parity(self, seed):
        """match=1500 overflows the int16 cap on any decent run: both
        kernels must escalate identically and agree bit-for-bit."""
        hot = Scoring(match=1500, mismatch=-3, gap_open=3, gap_extend=2)
        rng = np.random.default_rng(seed)
        a = random_codes(rng, 30)
        b = a.copy()  # perfect diagonal: 30*1500 tops any int16 cap
        profile = build_profile(b, hot)
        h_top, f_top, h_left, e_left, corner = local_boundaries(a.size, b.size)
        dp = get_policy("int16")
        assert b.size <= dp.max_width(hot)
        got = compiled.sweep_block_compiled(
            a, profile, h_top, f_top, h_left, e_left, corner, hot, dp=dp)
        want = sweep_block(a, profile, h_top, f_top, h_left, e_left, corner,
                           hot, dp=dp)
        _assert_block_equal(got, want)
        assert want.escalated  # the scheme really does overflow int16

    def test_wavefront_adapter_matches_batched(self, rng):
        jobs = []
        for _ in range(5):
            rows = int(rng.integers(1, 30))
            cols = int(rng.integers(1, 30))
            b = random_codes(rng, cols)
            jobs.append(BlockJob(
                a_codes=random_codes(rng, rows),
                profile=build_profile(b, DNA_DEFAULT),
                h_top=rng.integers(-80, 90, cols).astype(DTYPE),
                f_top=rng.integers(-150, 60, cols).astype(DTYPE),
                h_left=rng.integers(-80, 90, rows).astype(DTYPE),
                e_left=rng.integers(-150, 60, rows).astype(DTYPE),
                h_diag=int(rng.integers(-80, 90)),
            ))
        got = compiled.sweep_wavefront_compiled(jobs, DNA_DEFAULT)
        want = sweep_wavefront(jobs, DNA_DEFAULT)
        for g, w in zip(got, want):
            _assert_block_equal(g, w)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           prune=st.booleans(),
           dp_dtype=st.sampled_from(["int32", "int16", "auto"]))
    def test_compute_blocked_matches_scalar(self, seed, prune, dp_dtype):
        rng = np.random.default_rng(seed)
        a = random_dna(120, rng=rng)
        b = mutated_copy(rng, a, 0.04)

        def run(kernel):
            pruner = BlockPruner(match=DNA_DEFAULT.match) if prune else None
            return compute_blocked(a, b, DNA_DEFAULT, block_rows=32,
                                   block_cols=48, pruner=pruner,
                                   kernel=kernel, dp_dtype=dp_dtype)

        scalar = run("scalar")
        comp = run("compiled")
        assert comp.best == scalar.best
        # Same rolling-border schedule → identical pruning decisions and
        # identical narrow/wide accounting, block for block.
        assert comp.blocks_pruned == scalar.blocks_pruned
        assert comp.cells_pruned == scalar.cells_pruned
        assert comp.blocks_narrow == scalar.blocks_narrow
        assert comp.blocks_wide == scalar.blocks_wide
        assert comp.dtype_escalations == scalar.dtype_escalations
        assert comp.dp_dtype == scalar.dp_dtype


# ---------------------------------------------------------------------------
# warmup hook + telemetry exclusion
# ---------------------------------------------------------------------------

class TestWarmup:
    def test_idempotent_and_returns_seconds(self):
        first = compiled.warmup()
        again = compiled.warmup()
        assert first >= 0.0 and again >= 0.0

    def test_delay_hook_injects_cost(self, monkeypatch):
        monkeypatch.setenv("MGSW_WARMUP_DELAY", "0.05")
        assert compiled.warmup() >= 0.05

    def test_warmup_spans_cover_delay_in_process_engine(self, monkeypatch,
                                                        rng):
        """One-shot process workers: the injected warmup cost must land
        in per-worker ``warmup`` tracer spans, and every compute span
        must stay well under it (compile time never pollutes blocks)."""
        from repro.device.trace import Tracer
        from repro.multigpu import align_multi_process

        delay = 0.15
        monkeypatch.setenv("MGSW_WARMUP_DELAY", str(delay))
        a = random_dna(200, rng=rng)
        b = mutated_copy(rng, a, 0.03)
        tracer = Tracer()
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2,
                                  block_rows=64, kernel="compiled",
                                  tracer=tracer)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        assert res.score == want
        for g in range(2):
            assert tracer.total(f"worker{g}", "warmup") >= delay * 0.9
        computes = [iv for iv in tracer.intervals if iv.kind == "compute"]
        assert computes and all(iv.duration < delay for iv in computes)

    def test_pool_lazy_warm_once_per_process(self, monkeypatch, rng):
        """Pool workers warm lazily on their first compiled task — spans
        appear in the first comparison's trace and never again."""
        from repro.device.trace import Tracer
        from repro.multigpu import WorkerPool

        delay = 0.15
        monkeypatch.setenv("MGSW_WARMUP_DELAY", str(delay))
        a = random_dna(200, rng=rng)
        b = mutated_copy(rng, a, 0.03)
        with WorkerPool(2, max_block_rows=64) as pool:
            t1 = Tracer()
            first = pool.align(a, b, DNA_DEFAULT, block_rows=64,
                               kernel="compiled", tracer=t1)
            t2 = Tracer()
            second = pool.align(a, b, DNA_DEFAULT, block_rows=64,
                                kernel="compiled", tracer=t2)
        assert first.score == second.score
        for g in range(2):
            assert t1.total(f"worker{g}", "warmup") >= delay * 0.9
            assert t2.total(f"worker{g}", "warmup") == 0.0
        assert all(iv.duration < delay for iv in t1.intervals
                   if iv.kind == "compute")

    def test_pool_spawn_warm_hook(self, monkeypatch, rng):
        """``warm_kernels=("compiled",)`` compiles at spawn, before the
        first slab: no warmup span in any comparison's trace, and no
        compute span carries the injected cost either."""
        from repro.device.trace import Tracer
        from repro.multigpu import WorkerPool

        delay = 0.15
        monkeypatch.setenv("MGSW_WARMUP_DELAY", str(delay))
        a = random_dna(160, rng=rng)
        b = mutated_copy(rng, a, 0.03)
        with WorkerPool(2, max_block_rows=64,
                        warm_kernels=("compiled",)) as pool:
            tracer = Tracer()
            res = pool.align(a, b, DNA_DEFAULT, block_rows=64,
                             kernel="compiled", tracer=tracer)
        assert res.score > 0
        assert not any(iv.kind == "warmup" for iv in tracer.intervals)
        assert all(iv.duration < delay for iv in tracer.intervals
                   if iv.kind == "compute")

    def test_pool_rejects_unknown_warm_kernel(self):
        from repro.multigpu import WorkerPool

        with pytest.raises(ConfigError, match="warm kernel"):
            WorkerPool(1, warm_kernels=("cuda",))
