"""Tests: the live /metrics + /status endpoint (repro.obs.exporter)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.comm.progress import ProgressBoard
from repro.errors import ObsError
from repro.obs import (
    EventJournal,
    MetricsRegistry,
    StatusServer,
    TimeSeriesSampler,
)
from repro.obs.exporter import PROMETHEUS_CONTENT_TYPE


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


@pytest.fixture
def board():
    b = ProgressBoard(2, label="exporter-test")
    yield b
    b.unlink()


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("blocks_computed", help="blocks").inc(7, device="g0")
        with StatusServer(registry=registry) as server:
            status, ctype, body = _get(server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE blocks_computed counter" in text
        assert 'blocks_computed{device="g0"} 7' in text

    def test_metrics_label_values_survive_a_scrape(self):
        # Satellite check end-to-end: exotic label values must come back
        # escaped per the exposition format, not raw.
        registry = MetricsRegistry()
        registry.counter("weird").inc(1, device='a\\b"c\nd')
        with StatusServer(registry=registry) as server:
            _, _, body = _get(server.url + "/metrics")
        assert r'device="a\\b\"c\nd"' in body.decode()

    def test_status_reports_run_state(self, board):
        journal = EventJournal(run_id="status-test")
        journal.emit("run_start", backend="process")
        sampler = TimeSeriesSampler(interval_s=3600.0)
        sampler.attach(board, rows=10, cols_per_worker=[4, 4])
        board.beat(0, 3, "compute")
        board.beat(1, 2, "compute")
        sampler.sample_once()
        try:
            with StatusServer(sampler=sampler, journal=journal) as server:
                _, ctype, body = _get(server.url + "/status")
        finally:
            sampler.close()
        assert ctype == "application/json"
        doc = json.loads(body)
        assert doc["serving"] is True
        assert doc["run_id"] == "status-test"
        assert [e["event"] for e in doc["events"]] == ["run_start"]
        assert doc["rows_done"] == 5
        assert doc["rows_target"] == 20
        assert doc["frames"][-1]["workers"][0]["phase"] == "compute"

    def test_status_with_no_sources_is_minimal(self):
        with StatusServer() as server:
            _, _, metrics = _get(server.url + "/metrics")
            _, _, status = _get(server.url + "/status")
        assert metrics == b""
        assert json.loads(status) == {"serving": True}

    def test_healthz(self):
        with StatusServer() as server:
            status, _, body = _get(server.url + "/healthz")
        assert status == 200 and body == b"ok\n"

    def test_unknown_path_is_404(self):
        with StatusServer() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
        assert err.value.code == 404


class TestLifecycle:
    def test_port_zero_picks_ephemeral_port(self):
        server = StatusServer()
        try:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.stop()

    def test_invalid_port_rejected(self):
        with pytest.raises(ObsError, match="outside"):
            StatusServer(port=70_000)

    def test_port_collision_raises_obs_error(self):
        with StatusServer() as server:
            with pytest.raises(ObsError, match="cannot bind"):
                StatusServer(port=server.port)

    def test_start_and_stop_are_idempotent(self):
        server = StatusServer()
        assert server.start() is server.start()
        server.stop()
        server.stop()

    def test_stopped_server_refuses_connections(self):
        server = StatusServer().start()
        url = server.url
        server.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(url + "/healthz")

    def test_constructed_but_never_started_stop_releases_the_port(self):
        # Regression: stop() used to return early when the serve thread
        # had never started, skipping server_close() — the socket is
        # bound at *construction*, so the port stayed un-rebindable for
        # the life of the process.
        server = StatusServer()
        port = server.port
        server.stop()
        with StatusServer(port=port) as reuse:   # must not raise
            assert reuse.port == port

    def test_stop_after_start_also_releases_the_port(self):
        server = StatusServer().start()
        port = server.port
        server.stop()
        with StatusServer(port=port) as reuse:
            assert reuse.port == port


class TestRegisteredRoutes:
    def test_route_serves_json_with_and_without_subpath(self):
        server = StatusServer()
        server.register("/jobs", lambda sub: {"sub": sub})
        try:
            with server:
                _, ctype, body = _get(server.url + "/jobs")
                assert ctype == "application/json"
                assert json.loads(body) == {"sub": None}
                _, _, body = _get(server.url + "/jobs/job-000001")
                assert json.loads(body) == {"sub": "job-000001"}
        finally:
            server.stop()

    def test_handler_none_is_404_and_unknown_path_still_404(self):
        server = StatusServer()
        server.register("/jobs", lambda sub: None if sub == "gone" else {})
        try:
            with server:
                with pytest.raises(urllib.error.HTTPError) as exc:
                    _get(server.url + "/jobs/gone")
                assert exc.value.code == 404
                with pytest.raises(urllib.error.HTTPError) as exc:
                    _get(server.url + "/nope")
                assert exc.value.code == 404
                # A sibling path that merely shares the prefix string is
                # not the route.
                with pytest.raises(urllib.error.HTTPError):
                    _get(server.url + "/jobsx")
        finally:
            server.stop()

    def test_bad_prefix_rejected(self):
        server = StatusServer()
        try:
            with pytest.raises(ObsError, match="must look like"):
                server.register("jobs", lambda sub: {})
            with pytest.raises(ObsError, match="must look like"):
                server.register("/jobs/", lambda sub: {})
        finally:
            server.stop()
