"""Unit tests: repro.multigpu.autotune."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, DeviceSpec
from repro.errors import ConfigError
from repro.multigpu import (
    ChainConfig,
    autotune,
    border_footprint_bytes,
    proportional_partition,
    predict_chain,
    time_multi_gpu,
)


class TestAutotune:
    def test_returns_feasible_config(self):
        t = autotune(ENV1_HETEROGENEOUS, 10_000_000, 10_000_000)
        assert t.config.block_rows in (256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
        assert t.config.channel_capacity in (2, 4, 8, 16)
        assert t.predicted_gcups > 0
        assert t.evaluated > 0

    def test_choice_is_model_optimal(self):
        rows = cols = 5_000_000
        t = autotune(ENV1_HETEROGENEOUS, rows, cols,
                     block_rows_candidates=(512, 4096, 32768),
                     capacity_candidates=(2, 8))
        slabs = proportional_partition(cols, [d.gcups for d in ENV1_HETEROGENEOUS])
        for br in (512, 4096, 32768):
            for cap in (2, 8):
                pred = predict_chain(ENV1_HETEROGENEOUS, slabs, rows,
                                     ChainConfig(block_rows=br, channel_capacity=cap))
                assert t.predicted_total_s <= pred.total_s + 1e-12

    def test_simulator_confirms_choice_beats_bad_config(self):
        rows = cols = 5_000_000
        t = autotune(ENV1_HETEROGENEOUS, rows, cols)
        good = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS, config=t.config)
        bad = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS,
                             config=ChainConfig(block_rows=32768,
                                                channel_capacity=2))
        assert good.gcups >= bad.gcups * 0.999

    def test_block_rows_capped_by_matrix(self):
        t = autotune(ENV1_HETEROGENEOUS, 1000, 1_000_000)
        assert t.config.block_rows <= 1000

    def test_memory_limit_respected(self):
        limit = border_footprint_bytes(512, 2, 2) + 1
        t = autotune(ENV1_HETEROGENEOUS, 10_000_000, 10_000_000,
                     device_slots=2, host_buffer_limit_bytes=limit)
        assert border_footprint_bytes(t.config.block_rows,
                                      t.config.channel_capacity, 2) <= limit

    def test_infeasible_raises(self):
        with pytest.raises(ConfigError):
            autotune(ENV1_HETEROGENEOUS, 10, 10_000,
                     block_rows_candidates=(1024,))
        with pytest.raises(ConfigError):
            autotune((), 100, 100)
        with pytest.raises(ConfigError):
            autotune(ENV1_HETEROGENEOUS, 0, 100)

    def test_footprint_formula(self):
        from repro.multigpu import segment_bytes
        assert border_footprint_bytes(512, 4, 2) == segment_bytes(512) * 8
