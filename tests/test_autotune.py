"""Unit tests: repro.multigpu.autotune."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, DeviceSpec
from repro.errors import ConfigError
from repro.multigpu import (
    ChainConfig,
    autotune,
    border_footprint_bytes,
    proportional_partition,
    predict_chain,
    time_multi_gpu,
)


class TestAutotune:
    def test_returns_feasible_config(self):
        t = autotune(ENV1_HETEROGENEOUS, 10_000_000, 10_000_000)
        assert t.config.block_rows in (256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
        assert t.config.channel_capacity in (2, 4, 8, 16)
        assert t.predicted_gcups > 0
        assert t.evaluated > 0

    def test_choice_is_model_optimal(self):
        rows = cols = 5_000_000
        t = autotune(ENV1_HETEROGENEOUS, rows, cols,
                     block_rows_candidates=(512, 4096, 32768),
                     capacity_candidates=(2, 8))
        slabs = proportional_partition(cols, [d.gcups for d in ENV1_HETEROGENEOUS])
        for br in (512, 4096, 32768):
            for cap in (2, 8):
                pred = predict_chain(ENV1_HETEROGENEOUS, slabs, rows,
                                     ChainConfig(block_rows=br, channel_capacity=cap))
                assert t.predicted_total_s <= pred.total_s + 1e-12

    def test_simulator_confirms_choice_beats_bad_config(self):
        rows = cols = 5_000_000
        t = autotune(ENV1_HETEROGENEOUS, rows, cols)
        good = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS, config=t.config)
        bad = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS,
                             config=ChainConfig(block_rows=32768,
                                                channel_capacity=2))
        assert good.gcups >= bad.gcups * 0.999

    def test_block_rows_capped_by_matrix(self):
        t = autotune(ENV1_HETEROGENEOUS, 1000, 1_000_000)
        assert t.config.block_rows <= 1000

    def test_memory_limit_respected(self):
        limit = border_footprint_bytes(512, 2, 2) + 1
        t = autotune(ENV1_HETEROGENEOUS, 10_000_000, 10_000_000,
                     device_slots=2, host_buffer_limit_bytes=limit)
        assert border_footprint_bytes(t.config.block_rows,
                                      t.config.channel_capacity, 2) <= limit

    def test_infeasible_raises(self):
        with pytest.raises(ConfigError):
            autotune(ENV1_HETEROGENEOUS, 10, 10_000,
                     block_rows_candidates=(1024,))
        with pytest.raises(ConfigError):
            autotune((), 100, 100)
        with pytest.raises(ConfigError):
            autotune(ENV1_HETEROGENEOUS, 0, 100)

    def test_footprint_formula(self):
        from repro.multigpu import segment_bytes
        assert border_footprint_bytes(512, 4, 2) == segment_bytes(512) * 8


class TestMeasuredAutotune:
    def test_measured_flag_and_cache(self):
        from repro.multigpu.autotune import _MEASURED_CACHE, clear_tuner_caches

        clear_tuner_caches()
        rows = cols = 400_000
        t = autotune(ENV1_HETEROGENEOUS, rows, cols, measured=True,
                     block_rows_candidates=(512, 2048),
                     capacity_candidates=(2, 4))
        assert t.measured and t.evaluated == 4
        assert len(_MEASURED_CACHE) == 1
        again = autotune(ENV1_HETEROGENEOUS, rows, cols, measured=True,
                         block_rows_candidates=(512, 2048),
                         capacity_candidates=(2, 4))
        assert again is t  # memo hit, no re-simulation
        assert not autotune(ENV1_HETEROGENEOUS, rows, cols).measured

    def test_measured_never_loses_to_analytic_on_simulator(self):
        # the X3 acceptance criterion, in unit form: judging candidates by
        # their simulated makespan cannot pick worse than the model does
        rows = cols = 1_000_000
        grid = dict(block_rows_candidates=(256, 1024, 8192),
                    capacity_candidates=(2, 8))
        analytic = autotune(ENV1_HETEROGENEOUS, rows, cols, **grid)
        measured = autotune(ENV1_HETEROGENEOUS, rows, cols,
                            measured=True, **grid)
        sim_an = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS,
                                config=analytic.config).total_time_s
        sim_me = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS,
                                config=measured.config).total_time_s
        assert sim_me <= sim_an + 1e-12
        assert abs(measured.predicted_total_s - sim_me) < 1e-9


class TestKernelCalibration:
    def test_probes_and_memoises(self):
        from repro.device import TESLA_M2090
        from repro.multigpu.autotune import (clear_tuner_caches,
                                             tune_device_kernel)
        from repro.seq import DNA_DEFAULT

        clear_tuner_caches()
        choice = tune_device_kernel(
            TESLA_M2090, DNA_DEFAULT,
            block_rows_candidates=(32, 64), kernels=("scalar", "batched"),
            dp_dtypes=("int32", "int16"), probe_cols=128, repeats=1)
        assert choice.device == TESLA_M2090.name
        assert choice.kernel in ("scalar", "batched")
        assert choice.block_rows in (32, 64)
        assert choice.dp_dtype in ("int32", "int16")
        assert choice.cells_per_second > 0
        # every feasible (kernel, block_rows, dtype) cell was probed
        assert len(choice.table) == 2 * 2 * 2
        assert choice.table[(choice.kernel, choice.block_rows,
                             choice.dp_dtype)] == choice.seconds_per_block
        again = tune_device_kernel(
            TESLA_M2090, DNA_DEFAULT,
            block_rows_candidates=(32, 64), kernels=("scalar", "batched"),
            dp_dtypes=("int32", "int16"), probe_cols=128, repeats=1)
        assert again is choice

    def test_unsupported_narrow_dtypes_are_skipped(self):
        from repro.device import TESLA_M2090
        from repro.multigpu.autotune import tune_device_kernel
        from repro.seq import Scoring

        heavy = Scoring(match=2, mismatch=-100, gap_open=4, gap_extend=2)
        choice = tune_device_kernel(
            TESLA_M2090, heavy, block_rows_candidates=(32,),
            kernels=("scalar",), dp_dtypes=("int32", "int8"),
            probe_cols=64, repeats=1)
        # int8 cannot host this scheme: only the wide probe ran
        assert list(choice.table) == [("scalar", 32, "int32")]


class TestRebalanceMath:
    def test_no_fire_when_capacity_matches_weights(self):
        from repro.multigpu.autotune import rebalance_weights

        d = rebalance_weights([2.0, 1.0], [200.0, 100.0], threshold=0.25)
        assert not d.fired and d.drift < 1e-12
        assert d.new_weights == (2 / 3, 1 / 3)

    def test_fires_and_renormalises_on_drift(self):
        from repro.multigpu.autotune import rebalance_weights

        d = rebalance_weights([4.0, 1.0], [100.0, 100.0], threshold=0.25)
        assert d.fired
        assert d.drift == pytest.approx((0.5 - 0.2) / 0.2)
        assert d.new_weights == pytest.approx((0.5, 0.5))

    def test_floor_prevents_starvation(self):
        from repro.multigpu.autotune import rebalance_weights

        d = rebalance_weights([1.0, 1.0], [1000.0, 1e-9], threshold=0.1,
                              floor=0.05)
        assert d.fired
        assert min(d.new_weights) >= 0.05 / 1.05 - 1e-12
        assert sum(d.new_weights) == pytest.approx(1.0)

    def test_validation(self):
        from repro.multigpu.autotune import rebalance_weights

        with pytest.raises(ConfigError):
            rebalance_weights([1.0], [1.0, 2.0])
        with pytest.raises(ConfigError):
            rebalance_weights([], [])
        with pytest.raises(ConfigError):
            rebalance_weights([1.0], [1.0], threshold=0.0)
        with pytest.raises(ConfigError):
            rebalance_weights([0.0], [0.0])


class TestProgressSampling:
    def test_rates_and_shares_from_board(self):
        from repro.comm.progress import ProgressBoard
        from repro.multigpu.autotune import (ProgressRateSampler,
                                             estimate_capacities)
        from repro.multigpu.partition import Slab
        import time as time_mod

        with ProgressBoard(2, label="t-rebal") as board:
            sampler = ProgressRateSampler(board, interval_s=0.005)
            board.beat(0, 0, "compute")
            board.beat(1, 0, "wait")
            sampler.sample_once()
            time_mod.sleep(0.02)
            board.beat(0, 100, "compute")
            board.beat(1, 10, "wait")
            sampler.sample_once()

            rates = sampler.rates()
            assert rates[0] > rates[1] > 0
            shares = sampler.compute_shares()
            assert shares[0] == 1.0 and shares[1] == 0.0

            slabs = [Slab(0, 0, 100), Slab(1, 100, 200)]
            caps = estimate_capacities(sampler, slabs)
            # worker 1 moved slowly but never computed: the share floor
            # projects a large idle capacity, worker 0's is rate-bound
            assert caps[0] == pytest.approx(100 * rates[0])
            assert caps[1] == pytest.approx(100 * rates[1] / 0.02)

    def test_neutral_fallback_without_motion(self):
        from repro.comm.progress import ProgressBoard
        from repro.multigpu.autotune import (ProgressRateSampler,
                                             estimate_capacities)
        from repro.multigpu.partition import Slab

        with ProgressBoard(2, label="t-rebal2") as board:
            sampler = ProgressRateSampler(board, interval_s=0.005)
            sampler.sample_once()
            caps = estimate_capacities(sampler, [Slab(0, 0, 70), Slab(1, 70, 100)])
            assert caps == [70.0, 30.0]  # keeps the current shares

    def test_board_may_outlive_a_shrunken_pool(self):
        from repro.comm.progress import ProgressBoard
        from repro.multigpu.autotune import (ProgressRateSampler,
                                             estimate_capacities)
        from repro.multigpu.partition import Slab

        with ProgressBoard(3, label="t-rebal3") as board:
            sampler = ProgressRateSampler(board, interval_s=0.005)
            sampler.sample_once()
            caps = estimate_capacities(sampler, [Slab(0, 0, 50), Slab(1, 50, 100)])
            assert len(caps) == 2
            with pytest.raises(ConfigError):
                estimate_capacities(
                    sampler, [Slab(i, i * 25, (i + 1) * 25) for i in range(4)])  # more slabs than slots


class TestPoolRebalanceIntegration:
    def test_skewed_weights_rebalance_toward_equal(self):
        import numpy as np

        from repro.multigpu import WorkerPool
        from repro.obs import MetricsRegistry
        from repro.seq import DNA_DEFAULT

        rng = np.random.default_rng(77)
        # long enough that the 4:1 skew is visible to the 20ms sampler
        a = rng.integers(0, 4, 2400).astype(np.int8)
        b = rng.integers(0, 4, 4000).astype(np.int8)
        # equally fast OS workers given a 4:1 slab split: the wide slab's
        # worker lags, the sampler sees the skew, and the pool re-weights
        with WorkerPool(2, weights=[4.0, 1.0], max_block_rows=8) as pool:
            ref = pool.align(a, b, DNA_DEFAULT, block_rows=8)
            # The sampler is wall-clock based, so the compute-share
            # estimate is noisy on a loaded machine: retry from the same
            # 4:1 start (fresh registry per attempt) until one observation
            # moves the split toward balance.
            for _ in range(5):
                pool.weights = [4.0, 1.0]
                registry = MetricsRegistry()
                res = pool.align(a, b, DNA_DEFAULT, block_rows=8,
                                 rebalance=True, metrics=registry)
                assert res.score == ref.score
                decision = pool.last_rebalance
                assert decision is not None
                share0 = pool.weights[0] / sum(pool.weights)
                if decision.fired and share0 < 0.8:
                    break
            assert decision.fired
            assert share0 < 0.8  # strictly more balanced than 4:1
            after = pool.align(a, b, DNA_DEFAULT, block_rows=8)
            assert after.score == ref.score
            assert [s.cols for s in after.partition] != \
                [s.cols for s in ref.partition]
        snap = registry.snapshot()["counters"]
        assert "slab_rebalances" in snap
        assert sum(s["value"] for s in snap["slab_rebalances"]["series"]) == 1
        gauges = registry.snapshot()["gauges"]
        assert "worker_rows_per_s" in gauges
