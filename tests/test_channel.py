"""Unit tests: repro.comm.channel — the D2H → ring → H2D border path."""

from __future__ import annotations

import pytest

from repro.comm import BorderChannel, BorderSegment
from repro.device import DeviceSpec, Engine, SimulatedGPU
from repro.errors import CommError


def make_pair(eng, *, capacity=4, device_slots=2, bw=1.0, lat=0.0):
    spec = DeviceSpec("x", gcups=1.0, pcie_gbps=bw, pcie_latency_s=lat)
    src = SimulatedGPU(eng, spec, 0)
    dst = SimulatedGPU(eng, spec, 1)
    ch = BorderChannel(eng, src, dst, capacity=capacity, device_slots=device_slots)
    return src, dst, ch


class TestDelivery:
    def test_fifo_delivery(self):
        eng = Engine()
        _src, _dst, ch = make_pair(eng)
        got = []

        def producer():
            for i in range(6):
                yield ch.reserve_out_slot()
                eng.process(ch.sender(BorderSegment(index=i, nbytes=1000)))

        def consumer():
            for _ in range(6):
                seg = yield ch.consume()
                got.append(seg.index)

        eng.process(producer())
        eng.process(consumer())
        eng.process(ch.receiver_pump(6))
        eng.run()
        assert got == [0, 1, 2, 3, 4, 5]
        assert ch.segments_sent == 6
        assert ch.segments_received == 6

    def test_transfer_time_charged_on_both_links(self):
        eng = Engine()
        src, dst, ch = make_pair(eng, bw=1.0, lat=0.0)  # 1 GB/s

        def producer():
            yield ch.reserve_out_slot()
            eng.process(ch.sender(BorderSegment(index=0, nbytes=1_000_000_000)))

        def consumer():
            yield ch.consume()

        eng.process(producer())
        eng.process(consumer())
        eng.process(ch.receiver_pump(1))
        total = eng.run()
        assert total == pytest.approx(2.0)  # 1s D2H + 1s H2D
        assert src.counters.d2h_s == pytest.approx(1.0)
        assert dst.counters.h2d_s == pytest.approx(1.0)

    def test_payload_passes_through(self):
        eng = Engine()
        _src, _dst, ch = make_pair(eng)
        got = []

        def producer():
            yield ch.reserve_out_slot()
            eng.process(ch.sender(BorderSegment(index=0, nbytes=10, payload={"k": 1})))

        def consumer():
            seg = yield ch.consume()
            got.append(seg.payload)

        eng.process(producer())
        eng.process(consumer())
        eng.process(ch.receiver_pump(1))
        eng.run()
        assert got == [{"k": 1}]


class TestBackpressure:
    def test_producer_stalls_when_chain_full(self):
        """With capacity=1 and device_slots=1 and a slow consumer, the
        producer cannot run more than ~2 segments ahead."""
        eng = Engine()
        _src, _dst, ch = make_pair(eng, capacity=1, device_slots=1, bw=1000.0)
        reserve_times = []

        def producer():
            for i in range(5):
                yield ch.reserve_out_slot()
                reserve_times.append(eng.now)
                eng.process(ch.sender(BorderSegment(index=i, nbytes=8)))

        def consumer():
            for _ in range(5):
                yield eng.timeout(10.0)
                yield ch.consume()

        eng.process(producer())
        eng.process(consumer())
        eng.process(ch.receiver_pump(5))
        eng.run()
        # The chain buffers ~4 segments (src slot + host slot + pump +
        # dst ring); the 5th reservation must wait for the first consume.
        assert all(t < 1.0 for t in reserve_times[:4])
        assert reserve_times[4] >= 10.0

    def test_larger_buffer_decouples(self):
        eng = Engine()
        _src, _dst, ch = make_pair(eng, capacity=8, device_slots=8, bw=1000.0)
        reserve_times = []

        def producer():
            for i in range(5):
                yield ch.reserve_out_slot()
                reserve_times.append(eng.now)
                eng.process(ch.sender(BorderSegment(index=i, nbytes=8)))

        def consumer():
            for _ in range(5):
                yield eng.timeout(10.0)
                yield ch.consume()

        eng.process(producer())
        eng.process(consumer())
        eng.process(ch.receiver_pump(5))
        eng.run()
        assert all(t < 1.0 for t in reserve_times)  # producer never stalls


class TestSyncPath:
    def test_sync_send_recv(self):
        eng = Engine()
        _src, _dst, ch = make_pair(eng, bw=1.0)
        got = []

        def producer():
            yield ch.reserve_out_slot()
            yield from ch.send_sync(BorderSegment(index=0, nbytes=1_000_000_000))
            got.append(("sent", eng.now))

        def consumer():
            seg = yield from ch.recv_sync()
            got.append(("recv", seg.index, eng.now))

        eng.process(producer())
        eng.process(consumer())
        eng.run()
        assert ("sent", pytest.approx(1.0)) == got[0]
        assert got[1][0] == "recv" and got[1][2] == pytest.approx(2.0)


class TestValidation:
    def test_bad_capacity(self):
        eng = Engine()
        spec = DeviceSpec("x", gcups=1.0)
        a, b = SimulatedGPU(eng, spec, 0), SimulatedGPU(eng, spec, 1)
        with pytest.raises(CommError):
            BorderChannel(eng, a, b, capacity=0)
        with pytest.raises(CommError):
            BorderChannel(eng, a, b, device_slots=0)
