"""Property-based tests (hypothesis) on the library's core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import RingBuffer
from repro.multigpu import proportional_partition
from repro.seq import DNA_DEFAULT, Scoring, decode, encode
from repro.seq.encoding import pack_2bit, reverse_complement, unpack_2bit
from repro.sw import align_local, sw_score, sw_score_naive
from repro.sw.myers_miller import align_global, global_score

# -- strategies --------------------------------------------------------------

dna_text = st.text(alphabet="ACGTN", min_size=0, max_size=60)
dna_text_nonempty = st.text(alphabet="ACGTN", min_size=1, max_size=40)
dna_codes = dna_text.map(encode)
dna_codes_nonempty = dna_text_nonempty.map(encode)

scorings = st.builds(
    Scoring,
    match=st.integers(1, 6),
    mismatch=st.integers(-6, 0),
    gap_open=st.integers(0, 6),
    gap_extend=st.integers(1, 4),
)


# -- encoding invariants -------------------------------------------------------

@given(dna_text)
def test_encode_decode_roundtrip(text):
    assert decode(encode(text)) == text


@given(dna_codes)
def test_reverse_complement_involution(codes):
    assert np.array_equal(reverse_complement(reverse_complement(codes)), codes)


@given(dna_codes)
def test_pack_unpack_roundtrip(codes):
    packed, mask, n = pack_2bit(codes)
    assert np.array_equal(unpack_2bit(packed, mask, n), codes)
    assert packed.size == (n + 3) // 4


# -- Smith-Waterman invariants -------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(dna_codes_nonempty, dna_codes_nonempty, scorings)
def test_kernel_equals_oracle(a, b, sc):
    want, *_ = sw_score_naive(a, b, sc)
    best = sw_score(a, b, sc)
    assert (best.score if best.row >= 0 else 0) == want


@settings(max_examples=40, deadline=None)
@given(dna_codes_nonempty, dna_codes_nonempty, scorings)
def test_score_symmetric_under_swap(a, b, sc):
    """The substitution matrix is symmetric, and gaps in a and b cost the
    same, so SW(a, b) == SW(b, a)."""
    sa = sw_score(a, b, sc)
    sb = sw_score(b, a, sc)
    assert (sa.score if sa.row >= 0 else 0) == (sb.score if sb.row >= 0 else 0)


@settings(max_examples=40, deadline=None)
@given(dna_codes_nonempty, dna_codes_nonempty, dna_codes_nonempty, scorings)
def test_score_monotone_under_extension(a, b, suffix, sc):
    """Appending sequence can only add candidate alignments, never remove:
    SW(a, b + suffix) >= SW(a, b)."""
    base = sw_score(a, b, sc)
    ext = sw_score(a, np.concatenate([b, suffix]), sc)
    base_s = base.score if base.row >= 0 else 0
    ext_s = ext.score if ext.row >= 0 else 0
    assert ext_s >= base_s


@settings(max_examples=30, deadline=None)
@given(dna_text.filter(lambda t: "N" not in t and len(t) >= 1), scorings)
def test_self_alignment_is_perfect(text, sc):
    codes = encode(text)
    best = sw_score(codes, codes, sc)
    assert best.score == len(text) * sc.match
    assert (best.row, best.col) == (len(text) - 1, len(text) - 1)


@settings(max_examples=25, deadline=None)
@given(dna_codes_nonempty, dna_codes_nonempty, scorings)
def test_local_always_geq_global(a, b, sc):
    """A global alignment is one candidate local alignment."""
    local = sw_score(a, b, sc)
    local_s = local.score if local.row >= 0 else 0
    assert local_s >= global_score(a, b, sc) or local_s >= 0


@settings(max_examples=25, deadline=None)
@given(dna_codes_nonempty, dna_codes_nonempty, scorings)
def test_align_local_validates_and_matches_score(a, b, sc):
    want, *_ = sw_score_naive(a, b, sc)
    aln = align_local(a, b, sc, base_cells=16)
    assert aln.score == want
    aln.validate(a, b, sc)  # raises on any inconsistency


@settings(max_examples=25, deadline=None)
@given(dna_codes_nonempty, dna_codes_nonempty, scorings)
def test_myers_miller_ops_cover_inputs(a, b, sc):
    aln = align_global(a, b, sc, base_cells=16)
    counts = aln.op_counts()
    assert counts["M"] + counts["D"] == a.size
    assert counts["M"] + counts["I"] == b.size


# -- partition invariants --------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    st.integers(10, 100_000),
    st.lists(st.floats(0.1, 100.0), min_size=1, max_size=8),
)
def test_partition_covers_disjointly(n_cols, weights):
    if n_cols < len(weights):
        return
    slabs = proportional_partition(n_cols, weights)
    assert slabs[0].col0 == 0
    assert slabs[-1].col1 == n_cols
    for left, right in zip(slabs, slabs[1:]):
        assert left.col1 == right.col0
    assert sum(s.cols for s in slabs) == n_cols
    assert all(s.cols >= 1 for s in slabs)


@settings(max_examples=40, deadline=None)
@given(st.integers(1000, 1_000_000), st.lists(st.floats(1.0, 50.0), min_size=2, max_size=6))
def test_partition_proportionality(n_cols, weights):
    slabs = proportional_partition(n_cols, weights)
    total_w = sum(weights)
    for s, w in zip(slabs, weights):
        ideal = n_cols * w / total_w
        # bounded deviation: rounding plus neighbour nudges
        assert abs(s.cols - ideal) <= max(2.0, 0.02 * n_cols)


# -- ring buffer model test --------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(st.integers(1, 8), st.lists(st.sampled_from(["push", "pop"]), max_size=60))
def test_ringbuffer_behaves_like_deque(capacity, ops):
    from collections import deque

    rb = RingBuffer(capacity)
    model: deque = deque()
    counter = 0
    for op in ops:
        if op == "push" and len(model) < capacity:
            rb.push(counter)
            model.append(counter)
            counter += 1
        elif op == "pop" and model:
            assert rb.pop() == model.popleft()
        assert len(rb) == len(model)
        assert rb.full == (len(model) == capacity)
        assert rb.empty == (len(model) == 0)
    # drain and compare
    while model:
        assert rb.pop() == model.popleft()
