"""F6 — wavefront fill/drain cost vs matrix aspect ratio.

The chain is a pipeline over block rows: the last device starts only after
the first border marches down the chain (fill), and efficiency depends on
the number of block rows amortising that stagger.  The harness fixes the
cell count and sweeps the aspect ratio, printing efficiency; squat
matrices (few block rows) lose throughput exactly as the pipeline model
predicts.
"""

from __future__ import annotations

from repro.device import TESLA_M2090, homogeneous
from repro.multigpu import ChainConfig, time_multi_gpu
from repro.perf import format_table

from bench_helpers import print_header

CELLS = 4 * 10**12
DEVICES = homogeneous(TESLA_M2090, 4)
BLOCK_ROWS = 8192


def run(rows: int):
    cols = CELLS // rows
    return time_multi_gpu(rows, cols, DEVICES,
                          config=ChainConfig(block_rows=BLOCK_ROWS,
                                             channel_capacity=8))


def test_f6_aspect_ratio(benchmark):
    print_header("F6 wavefront", "fill/drain cost shrinks as block rows amortise the pipeline")
    aggregate = sum(d.gcups for d in DEVICES)
    effs = []
    rows_out = []
    for rows in (BLOCK_ROWS * 4, BLOCK_ROWS * 16, BLOCK_ROWS * 64, BLOCK_ROWS * 256):
        res = run(rows)
        eff = res.gcups / aggregate
        effs.append(eff)
        n_block_rows = rows // BLOCK_ROWS
        rows_out.append([f"{rows:,}", f"{CELLS // rows:,}", str(n_block_rows),
                         f"{res.gcups:.2f}", f"{eff:.1%}"])
    print(format_table(["rows", "cols", "block rows", "GCUPS", "efficiency"], rows_out))

    # Efficiency increases monotonically with the number of block rows and
    # approaches the aggregate rate.
    assert all(b > a for a, b in zip(effs, effs[1:]))
    assert effs[-1] > 0.95
    assert effs[0] < 0.93  # squat matrix pays visible fill/drain

    benchmark(run, BLOCK_ROWS * 16)
