"""X2 — baseline comparison: multi-GPU chain vs single GPU vs inter-task vs CPU.

The paper's motivation experiment: for ONE huge comparison, inter-task
(database-search style) parallelism is bounded by the fastest single
device, while the fine-grain chain uses all of them.  The CPU row anchors
the simulated figures with a real wall-clock measurement of the NumPy
kernel on this machine.
"""

from __future__ import annotations

from repro.baselines import Task, run_cpu, single_task_best_device, time_single_gpu
from repro.multigpu import time_multi_gpu
from repro.perf import format_table, humanize_time
from repro.workloads import get_pair, synthesize_pair
from repro.seq import DNA_DEFAULT

from bench_helpers import paper_config, print_header

PAIR = get_pair("chr22")


def run_chain(env1):
    return time_multi_gpu(PAIR.human_len, PAIR.chimp_len, env1,
                          config=paper_config())


def test_x2_baseline_comparison(benchmark, env1):
    print_header("X2 baselines", "fine-grain chain beats any single device on one huge comparison")
    chain = run_chain(env1)
    fastest = max(env1, key=lambda d: d.gcups)
    single = time_single_gpu(PAIR.human_len, PAIR.chimp_len, fastest,
                             block_rows=8192)
    intertask = single_task_best_device(Task(PAIR.human_len, PAIR.chimp_len), env1)

    # CPU anchor: real wall time on a small compute-mode stand-in.
    a, b = synthesize_pair(PAIR, scale=2e-4, seed=0)
    cpu = run_cpu(a, b, DNA_DEFAULT)

    rows = [
        ["3-GPU chain (virtual)", f"{chain.gcups:.2f}", humanize_time(chain.total_time_s)],
        [f"best single GPU: {fastest.name} (virtual)", f"{single.gcups:.2f}",
         humanize_time(single.total_time_s)],
        ["inter-task on 3 GPUs (virtual)", f"{intertask.gcups:.2f}",
         humanize_time(intertask.makespan_s)],
        ["CPU NumPy kernel (wall, small stand-in)", f"{cpu.gcups:.3f}", "-"],
    ]
    print(format_table(["configuration", "GCUPS", "chr22 time"], rows))

    # Shape claims: the chain wins by roughly the aggregate/fastest ratio.
    assert chain.gcups > 2.3 * single.gcups
    assert abs(intertask.gcups - single.gcups) / single.gcups < 0.05
    assert cpu.gcups < single.gcups  # a host kernel is no GPU

    benchmark(run_chain, env1)
