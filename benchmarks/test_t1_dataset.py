"""T1 — the dataset table: 4 human-chimpanzee homologous chromosome pairs.

Paper: the evaluation compares 4 pairs of human-chimpanzee homologous
chromosomes (abstract).  This harness regenerates the dataset table
(names, lengths, matrix cells) and, for the compute-mode stand-ins,
measures the synthesis cost.
"""

from __future__ import annotations

from repro.perf import format_table, humanize_cells
from repro.workloads import PAPER_PAIRS, synthesize_pair

from bench_helpers import print_header


def test_t1_dataset_table(benchmark):
    print_header("T1 dataset", "4 human-chimp homologous chromosome pairs")
    rows = []
    for pair in PAPER_PAIRS:
        rows.append([
            pair.name,
            f"{pair.human_len:,}",
            f"{pair.chimp_len:,}",
            humanize_cells(pair.cells),
        ])
    print(format_table(["pair", "human (bp)", "chimp (bp)", "matrix cells"], rows))

    # All four pairs are megabase-scale with >10^15 cells each.
    assert all(p.cells > 1e15 for p in PAPER_PAIRS)
    assert len(PAPER_PAIRS) == 4

    # Benchmark: synthesising one compute-mode stand-in pair.
    human, chimp = benchmark(synthesize_pair, PAPER_PAIRS[0], scale=3e-4, seed=0)
    assert human.size > 0 and chimp.size > 0
