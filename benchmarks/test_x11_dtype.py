"""X11 — narrow-int DP kernels: int16/int8 throughput vs the int32 baseline.

Wall-clock numbers from the single-device blocked executor with the
batched kernel at the paper-style geometry (256-row block rows, 2048-col
slab-width blocks).  The narrow kernels move half (int16) or a quarter
(int8) of the bytes per cell through every vectorised ufunc of the row
sweep — but the per-row ``np.maximum.accumulate`` E-scan is a sequential
C loop whose cost is dtype-*insensitive* (~3 ns/element regardless of
width) and claims roughly 40% of the row budget, so Amdahl caps the
realisable narrow speedup well below the 2x byte ratio.  The bound
asserted here (>= 1.08x, typical 1.12-1.17x on commodity hosts) is the
honest executor-level figure for that mechanism; scores stay
bit-identical throughout (the cross-engine differential suite holds the
exactness; this experiment holds the speed).

Three sections:

* square — a 16k x 16k random pair, int32 vs int16 vs auto (auto must
  resolve narrow here and match int16's throughput class);
* megabase — a 1k x 1M strip, the shape the multi-GPU slabs actually
  sweep, int32 vs int16;
* int8 — informational: a 2048 x 2048 pair at the int8-feasible block
  width (48 cols under DNA defaults), where the quarter-width sweep
  shows its ceiling despite the narrow blocks.

Set ``MGSW_X11_TINY=1`` for the CI smoke configuration.  Results land in
``benchmarks/BENCH_dtype.json`` for regression tracking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.sw import KernelWorkspace, compute_blocked
from repro.sw.constants import resolve_dp_dtype
from repro.workloads import random_dna

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X11_TINY"))
N = 2_048 if TINY else 16_384
MEGA_M = 512 if TINY else 1_024
MEGA_N = 65_536 if TINY else 1_048_576
BLOCK_ROWS = 256
BLOCK_COLS = 2_048
REPEATS = 2 if TINY else 3          # best-of to shed scheduler noise
#: Acceptance bound for int16 over int32 on the square workload: the
#: dtype-insensitive E-scan (sequential ``maximum.accumulate``) caps the
#: narrow win near 1.15x, so the assert leaves noise margin under that.
#: The tiny matrix has too few wavefront lanes to amortise the row loop
#: at all, so CI only checks the narrow path doesn't regress below
#: parity.
MIN_SPEEDUP = 0.9 if TINY else 1.08
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_dtype.json"


def _best_run(a, b, dp_dtype, *, block_cols=BLOCK_COLS, repeats=REPEATS):
    workspace = KernelWorkspace()   # shared across repeats, like the engines
    best_s, out = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = compute_blocked(a, b, DNA_DEFAULT, block_rows=BLOCK_ROWS,
                              block_cols=block_cols, kernel="batched",
                              workspace=workspace, dp_dtype=dp_dtype)
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s, out = elapsed, run
    return best_s, out


def _section(title, a, b, dtypes, **kwargs):
    cells = int(a.size) * int(b.size)
    runs = {d: _best_run(a, b, d, **kwargs) for d in dtypes}
    outcomes = {(r.best.score, r.best.row, r.best.col) for _, r in runs.values()}
    assert len(outcomes) == 1, f"{title}: dtypes disagree on the best cell"
    gcups = {d: cells / s / 1e9 for d, (s, _) in runs.items()}
    rows = [[d, runs[d][1].dp_dtype, f"{gcups[d]:.4f}", f"{runs[d][0]:.3f}s",
             str(runs[d][1].blocks_narrow), str(runs[d][1].dtype_escalations)]
            for d in dtypes]
    print(f"\n{title}: {a.size:,} x {b.size:,} "
          f"({cells / 1e6:.0f} Mcells, best-of-{kwargs.get('repeats', REPEATS)})")
    print(format_table(
        ["dp_dtype", "resolved", "GCUPS (wall)", "wall time",
         "narrow blocks", "escalations"], rows))
    return runs, gcups


def test_x11_dtype_throughput(benchmark):
    print_header("X11 narrow-int DP kernels",
                 f"int16 sweeps vs int32 >= {MIN_SPEEDUP}x (wall clock), "
                 "bit-identical scores")
    rng = np.random.default_rng(53)

    # -- square section ------------------------------------------------------
    a = random_dna(N, rng=rng)
    b = random_dna(N, rng=rng)
    sq_runs, sq_gcups = _section("square", a, b, ("int32", "int16", "auto"))
    auto_resolved = sq_runs["auto"][1].dp_dtype
    assert auto_resolved != "int32", "auto failed to go narrow on this pair"
    assert sq_runs["int16"][1].dtype_escalations == 0  # random pair: no risk
    speedup = sq_gcups["int16"] / sq_gcups["int32"]
    print(f"int16/int32 speedup: {speedup:.2f}x  (auto -> {auto_resolved})")

    # -- megabase strip ------------------------------------------------------
    ma = random_dna(MEGA_M, rng=rng)
    mb = random_dna(MEGA_N, rng=rng)
    mega_runs, mega_gcups = _section("megabase strip", ma, mb,
                                     ("int32", "int16"), repeats=1)
    mega_speedup = mega_gcups["int16"] / mega_gcups["int32"]
    print(f"megabase int16/int32 speedup: {mega_speedup:.2f}x")

    # -- int8 (informational: narrow blocks cap the batch width) -------------
    ia = random_dna(2_048, rng=rng)
    ib = random_dna(2_048, rng=rng)
    w8 = resolve_dp_dtype("int8", DNA_DEFAULT, block_cols=48,
                          m=ia.size, n=ib.size).max_width(DNA_DEFAULT)
    int8_runs, int8_gcups = _section("int8 feasibility", ia, ib,
                                     ("int32", "int8"), block_cols=w8,
                                     repeats=REPEATS)
    int8_speedup = int8_gcups["int8"] / int8_gcups["int32"]
    print(f"int8/int32 speedup at width {w8}: {int8_speedup:.2f}x "
          "(informational)")

    best = sq_runs["int32"][1].best
    record = {
        "experiment": "x11_dtype",
        "tiny": TINY,
        "matrix": {"rows": int(a.size), "cols": int(b.size)},
        "block": {"rows": BLOCK_ROWS, "cols": BLOCK_COLS},
        "repeats": REPEATS,
        "score": best.score,
        "end": [best.row, best.col],
        "gcups": {d: sq_gcups[d] for d in sq_gcups},
        "wall_time_s": {d: sq_runs[d][0] for d in sq_runs},
        "auto_resolved": auto_resolved,
        "speedup_int16": speedup,
        "megabase": {
            "matrix": {"rows": int(ma.size), "cols": int(mb.size)},
            "gcups": mega_gcups,
            "speedup_int16": mega_speedup,
        },
        "int8": {
            "matrix": {"rows": int(ia.size), "cols": int(ib.size)},
            "block_cols": int(w8),
            "gcups": int8_gcups,
            "speedup": int8_speedup,
        },
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"int16 kernel only {speedup:.2f}x over int32 (need {MIN_SPEEDUP}x)")

    benchmark(compute_blocked, a, b, DNA_DEFAULT, block_rows=BLOCK_ROWS,
              block_cols=BLOCK_COLS, kernel="batched", dp_dtype="int16")
