"""F1 — scaling figure: GCUPS and speedup vs number of GPUs.

Paper: the strategy spreads one matrix over multiple GPUs with hidden
communication, so throughput scales with the number of devices while the
slabs stay wide.  The harness sweeps 1..8 homogeneous devices at a fixed
megabase matrix and prints the GCUPS / speedup / efficiency series
(the figure's data), asserting ≥90% parallel efficiency at 8 GPUs.
"""

from __future__ import annotations

from repro.device import TESLA_M2090, homogeneous
from repro.multigpu import time_multi_gpu
from repro.perf import efficiency, format_table, speedup

from bench_helpers import paper_config, print_header

ROWS = COLS = 20_000_000


def run(k: int):
    return time_multi_gpu(ROWS, COLS, homogeneous(TESLA_M2090, k),
                          config=paper_config())


def test_f1_gpu_scaling(benchmark):
    print_header("F1 scaling", "near-linear GCUPS growth with GPU count")
    base = run(1)
    rows = []
    for k in (1, 2, 3, 4, 6, 8):
        res = run(k)
        s = speedup(base.total_time_s, res.total_time_s)
        e = efficiency(s, k)
        rows.append([str(k), f"{res.gcups:.2f}", f"{s:.2f}x", f"{e:.1%}"])
        if k == 8:
            assert e > 0.9
    print(format_table(["GPUs", "GCUPS", "speedup", "efficiency"], rows))

    benchmark(run, 4)
