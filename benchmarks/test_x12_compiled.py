"""X12 — compiled kernel backend: JIT row sweeps + log-step E-scan.

Wall-clock comparison of the three block-sweep kernels (scalar, batched,
compiled) at int32 and int16 on the paper-style geometry.  X11 measured
the Amdahl floor: the sequential per-row ``np.maximum.accumulate``
E-scan is dtype-insensitive, so narrow-int kernels cap near 1.15x over
int32 no matter how many bytes they save.  This experiment measures the
two mechanisms PR 8 built to break that floor:

* the Kogge–Stone log-step prefix-max (``sw/scan.py``) replaces the
  sequential C loop with ``ceil(log2 n)`` vectorised ``np.maximum``
  rounds — the *E-scan share* section times the batched kernel under
  both engines to show how much of the sweep the serial scan was
  claiming;
* the numba-jitted fused row sweep (``sw/compiled.py``) removes the
  NumPy temporaries entirely, computing H/E/F and the best cell in one
  dtype-specialised pass.

JIT compile time is excluded: ``compiled_warmup()`` runs before any
timed sweep, exactly as the engines warm their workers once per process.
Scores must stay bit-identical across every kernel x dtype cell (the
cross-engine differential suite holds exactness; this holds speed).

The headline bound — compiled int16 >= 1.5x batched int32 — only
applies where numba is importable; without it the compiled backend runs
the pure-NumPy Kogge–Stone oracle, so the run degrades to a
parity-check (bit-identical scores, no speed claim).  Set
``MGSW_X12_TINY=1`` for the CI smoke configuration.  Results land in
``benchmarks/BENCH_compiled.json`` for regression tracking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.sw import (
    KernelWorkspace,
    compiled_warmup,
    compute_blocked,
    numba_available,
    use_scan_engine,
)
from repro.workloads import random_dna

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X12_TINY"))
N = 2_048 if TINY else 16_384
MEGA_M = 512 if TINY else 1_024
MEGA_N = 65_536 if TINY else 1_048_576
BLOCK_ROWS = 256
BLOCK_COLS = 2_048
REPEATS = 2 if TINY else 3          # best-of to shed scheduler noise
KERNELS = ("scalar", "batched", "compiled")
#: Headline bound: the fused JIT sweep at int16 over the batched NumPy
#: sweep at int32 — the cross-kernel *and* cross-dtype win the paper's
#: CUDA kernel banks on.  Only asserted where numba actually compiles
#: (the oracle fallback is a correctness lane, not a speed lane) and at
#: full scale (the tiny matrix can't amortise anything).
MIN_SPEEDUP = 1.5
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_compiled.json"


def _best_run(a, b, kernel, dp_dtype, *, repeats=REPEATS):
    workspace = KernelWorkspace()   # shared across repeats, like the engines
    best_s, out = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        run = compute_blocked(a, b, DNA_DEFAULT, block_rows=BLOCK_ROWS,
                              block_cols=BLOCK_COLS, kernel=kernel,
                              workspace=workspace, dp_dtype=dp_dtype)
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s, out = elapsed, run
    return best_s, out


def _section(title, a, b, cases, *, repeats=REPEATS):
    """Run (kernel, dp_dtype) cases, assert one best cell, print a table."""
    cells = int(a.size) * int(b.size)
    runs = {c: _best_run(a, b, *c, repeats=repeats) for c in cases}
    outcomes = {(r.best.score, r.best.row, r.best.col) for _, r in runs.values()}
    assert len(outcomes) == 1, f"{title}: kernels disagree on the best cell"
    gcups = {c: cells / s / 1e9 for c, (s, _) in runs.items()}
    rows = [[k, d, runs[c][1].dp_dtype, f"{gcups[c]:.4f}",
             f"{runs[c][0]:.3f}s", str(runs[c][1].dtype_escalations)]
            for c in cases for k, d in [c]]
    print(f"\n{title}: {a.size:,} x {b.size:,} "
          f"({cells / 1e6:.0f} Mcells, best-of-{repeats})")
    print(format_table(
        ["kernel", "dp_dtype", "resolved", "GCUPS (wall)", "wall time",
         "escalations"], rows))
    return runs, gcups


def _escan_share(a, b):
    """Batched int32 wall under each scan engine: what the serial scan cost.

    ``1 - t_ks / t_seq`` is the fraction of the sweep the sequential
    E-scan was claiming that the log-step engine hands back.
    """
    with use_scan_engine("sequential"):
        t_seq, out_seq = _best_run(a, b, "batched", "int32")
    with use_scan_engine("kogge_stone"):
        t_ks, out_ks = _best_run(a, b, "batched", "int32")
    assert (out_seq.best.score, out_seq.best.row, out_seq.best.col) == \
           (out_ks.best.score, out_ks.best.row, out_ks.best.col), \
        "scan engines disagree on the best cell"
    return t_seq, t_ks


def test_x12_compiled_throughput(benchmark):
    jit = numba_available()
    print_header("X12 compiled kernel backend",
                 f"compiled int16 vs batched int32 >= {MIN_SPEEDUP}x "
                 "(wall clock, warmup excluded), bit-identical scores; "
                 f"numba {'present' if jit else 'ABSENT -> oracle parity run'}")
    warm_s = compiled_warmup()
    print(f"jit warmup: {warm_s:.3f}s (excluded from every timed sweep)")
    rng = np.random.default_rng(54)

    cases = [(k, d) for k in KERNELS for d in ("int32", "int16")]

    # -- square section ------------------------------------------------------
    a = random_dna(N, rng=rng)
    b = random_dna(N, rng=rng)
    sq_runs, sq_gcups = _section("square", a, b, cases)
    speedup = sq_gcups[("compiled", "int16")] / sq_gcups[("batched", "int32")]
    print(f"compiled-int16 / batched-int32 speedup: {speedup:.2f}x")

    # -- megabase strip ------------------------------------------------------
    ma = random_dna(MEGA_M, rng=rng)
    mb = random_dna(MEGA_N, rng=rng)
    mega_runs, mega_gcups = _section("megabase strip", ma, mb, cases,
                                     repeats=1)
    mega_speedup = (mega_gcups[("compiled", "int16")]
                    / mega_gcups[("batched", "int32")])
    print(f"megabase compiled-int16 / batched-int32 speedup: "
          f"{mega_speedup:.2f}x")

    # -- E-scan share: sequential vs log-step on the batched sweep -----------
    t_seq, t_ks = _escan_share(a, b)
    share = 1.0 - t_ks / t_seq
    print(f"\nE-scan engines (batched int32, square): "
          f"sequential {t_seq:.3f}s -> kogge_stone {t_ks:.3f}s "
          f"({share:+.1%} of the sweep recovered by the log-step scan)")

    best = sq_runs[("batched", "int32")][1].best
    record = {
        "experiment": "x12_compiled",
        "tiny": TINY,
        "numba": jit,
        "matrix": {"rows": int(a.size), "cols": int(b.size)},
        "block": {"rows": BLOCK_ROWS, "cols": BLOCK_COLS},
        "repeats": REPEATS,
        "warmup_s": warm_s,
        "score": best.score,
        "end": [best.row, best.col],
        "gcups": {f"{k}_{d}": sq_gcups[(k, d)] for k, d in cases},
        "wall_time_s": {f"{k}_{d}": sq_runs[(k, d)][0] for k, d in cases},
        "speedup_compiled_int16": speedup,
        "megabase": {
            "matrix": {"rows": int(ma.size), "cols": int(mb.size)},
            "gcups": {f"{k}_{d}": mega_gcups[(k, d)] for k, d in cases},
            "speedup_compiled_int16": mega_speedup,
        },
        "escan": {
            "sequential_s": t_seq,
            "kogge_stone_s": t_ks,
            "share_recovered": share,
        },
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if jit and not TINY:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled int16 only {speedup:.2f}x over batched int32 "
            f"(need {MIN_SPEEDUP}x)")
    elif jit:
        # Tiny matrices can't amortise the row loop; just hold parity.
        assert speedup >= 0.5, f"compiled collapsed under TINY: {speedup:.2f}x"

    benchmark(compute_blocked, a, b, DNA_DEFAULT, block_rows=BLOCK_ROWS,
              block_cols=BLOCK_COLS, kernel="compiled", dp_dtype="int16")
