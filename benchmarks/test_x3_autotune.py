"""X3 — ablation: block-row height and the autotuner's choice.

The block-row height is the chain's main hand-tuned knob (border
granularity vs pipeline fill).  The harness sweeps it on ENV1 at paper
scale, prints the GCUPS curve, and checks that the analytic autotuner's
pick is within 1% of the best swept configuration.

The measured tuner (``autotune(..., measured=True)``) judges candidates
by full event-simulator runs instead of the closed-form pipeline model.
On the simulator's own workload it is exact by construction, so the
analytic model is graded against it here: the measured pick must be at
least as good in simulated GCUPS, and the gap between the two is the
model's forecasting error — small when the analytic fill/drain terms
capture the chain, which is exactly what this experiment documents.
"""

from __future__ import annotations

from repro.multigpu import ChainConfig, autotune, time_multi_gpu
from repro.perf import format_table
from repro.workloads import get_pair

from bench_helpers import print_header

PAIR = get_pair("chr22")
SWEEP = (256, 1024, 4096, 16384, 65536)


def run(block_rows: int):
    return time_multi_gpu(PAIR.human_len, PAIR.chimp_len, _ENV,
                          config=ChainConfig(block_rows=block_rows,
                                             channel_capacity=8))


_ENV = None  # bound in the test for fixture access


def test_x3_autotune(benchmark, env1):
    global _ENV
    _ENV = env1
    print_header("X3 autotune", "analytic model picks a near-optimal block height")
    rows = []
    best_swept = 0.0
    for br in SWEEP:
        res = run(br)
        best_swept = max(best_swept, res.gcups)
        rows.append([str(br), f"{res.gcups:.2f}"])
    tuned = autotune(env1, PAIR.human_len, PAIR.chimp_len)
    tuned_sim = time_multi_gpu(PAIR.human_len, PAIR.chimp_len, env1,
                               config=tuned.config)
    rows.append([f"autotuned ({tuned.config.block_rows})", f"{tuned_sim.gcups:.2f}"])
    print(format_table(["block rows", "GCUPS"], rows))
    print(f"model predicted {tuned.predicted_gcups:.2f} GCUPS "
          f"over {tuned.evaluated} candidates")

    assert tuned_sim.gcups >= best_swept * 0.99

    # -- measured vs analytic: simulator-judged candidates cannot lose
    # to model-judged ones on the simulator's own workload ---------------
    measured = autotune(env1, PAIR.human_len, PAIR.chimp_len, measured=True)
    measured_sim = time_multi_gpu(PAIR.human_len, PAIR.chimp_len, env1,
                                  config=measured.config)
    gap = (measured_sim.total_time_s - tuned_sim.total_time_s) \
        / measured_sim.total_time_s
    print(f"measured tuner: block_rows={measured.config.block_rows} "
          f"buffer={measured.config.channel_capacity} "
          f"-> {measured_sim.gcups:.2f} GCUPS simulated")
    print(f"analytic-vs-measured forecasting gap: {gap * 100:+.2f}% "
          "(positive = analytic pick slower)")
    assert measured.measured
    assert measured_sim.total_time_s <= tuned_sim.total_time_s * (1 + 1e-9), \
        "measured tuner lost to the analytic model on the simulator"

    benchmark(run, 4096)
