"""X5 — campaign strategies: fine-grain chaining vs per-pair placement.

The paper's full evaluation is a campaign over four chromosome pairs.
This harness runs the whole campaign both ways on ENV1: ``chained`` (each
pair over all GPUs via the paper's strategy, sequentially) and ``split``
(each pair on its own device, concurrently).  On a heterogeneous machine
with unequal pairs, chaining wins BOTH makespan and mean per-comparison
latency — fine-grain parallelism subsumes the inter-task alternative even
for multi-pair workloads.
"""

from __future__ import annotations

from repro.multigpu import run_campaign_chained, run_campaign_split
from repro.perf import format_table, humanize_time
from repro.workloads import PAPER_PAIRS

from bench_helpers import paper_config, print_header


def run_both(env1):
    cfg = paper_config()
    return (run_campaign_chained(PAPER_PAIRS, env1, config=cfg),
            run_campaign_split(PAPER_PAIRS, env1, config=cfg))


def test_x5_campaign_strategies(benchmark, env1):
    print_header("X5 campaign", "chaining beats per-pair placement on makespan AND latency")
    chained, split = run_both(env1)
    rows = []
    for res in (chained, split):
        rows.append([
            res.strategy,
            humanize_time(res.makespan_s),
            f"{res.aggregate_gcups:.2f}",
            humanize_time(res.mean_latency_s),
        ])
    print(format_table(["strategy", "makespan", "aggregate GCUPS", "mean latency"], rows))
    per_pair = [[i.pair.name, humanize_time(i.end_s), f"{i.gcups:.2f}"]
                for i in chained.items]
    print("\nchained per-pair completion:")
    print(format_table(["pair", "done at", "GCUPS"], per_pair))

    assert chained.makespan_s < split.makespan_s
    assert chained.mean_latency_s < split.mean_latency_s
    assert chained.aggregate_gcups > 1.15 * split.aggregate_gcups

    benchmark(run_both, env1)
