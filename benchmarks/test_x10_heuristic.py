"""X10 — heuristic tier speedup (host wall clock, exact vs heuristics).

The heuristic tier exists to answer "find the good alignment fast"
queries without paying for the full matrix: on a <= 5%-divergence pair
the optimal path hugs the main diagonal, the adaptive band computes
``O((2 hw + 1) m)`` cells instead of ``m * n``, and X-drop extension
touches only the live window.  This experiment measures host wall clock
for the four modes on one similar pair and one divergent pair at a
shared scale, asserts the **>= 5x** banded/xdrop speedup over exact on
the similar pair, and adds a heuristic-only megabase-scale section the
exact engines could not touch interactively.

``mode="auto"`` is measured end-to-end both ways: on the similar pair it
must answer from the banded tier (no exact re-run); on the divergent
pair it must escalate and still return the exact score.

Set ``MGSW_X10_TINY=1`` for the CI smoke configuration.  Results land in
``benchmarks/BENCH_heuristic.json`` (`mgsw perf diff` target).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.sw import compute_blocked
from repro.sw.xdrop import (
    DEFAULT_BAND_WIDTH,
    DEFAULT_XDROP_X,
    adaptive_banded_score,
    assess_heuristic,
    xdrop_score,
)
from repro.workloads import random_dna

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X10_TINY"))
#: Shared scale: large enough that exact wall clock dominates per-stripe
#: overhead, small enough that the exact reference stays interactive.
N = 2_000 if TINY else 16_000
#: Heuristic-only scale (the exact engines would need ~100x the wall
#: clock of the N-scale run here — the whole point of the tier).
MEGA_N = 20_000 if TINY else 250_000
SNP_RATE = 0.03                  # <= 5% divergence: the similar workload
BLOCK = 512
MIN_SPEEDUP = 2.0 if TINY else 5.0
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_heuristic.json"


def _mutated(rng, codes, rate):
    out = codes.copy()
    mask = rng.random(codes.size) < rate
    shift = rng.integers(1, 4, int(mask.sum()), dtype=np.uint8)
    out[mask] = (out[mask] + shift) % 4
    return out


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return time.perf_counter() - t0, out


def _run_modes(a, b, *, exact: bool):
    """Wall-clock one pair through the tiers (exact optionally skipped
    for the megabase section).  Returns ``{mode: row_dict}``."""
    m, n = int(a.size), int(b.size)
    cells = m * n
    rows: dict[str, dict] = {}

    if exact:
        wall, out = _timed(compute_blocked, a, b, DNA_DEFAULT,
                           block_rows=BLOCK, block_cols=BLOCK)
        rows["exact"] = {
            "wall_time_s": wall, "score": int(out.best.score),
            "cells_computed": cells, "gcups": cells / wall / 1e9}

    wall, bo = _timed(adaptive_banded_score, a, b, DNA_DEFAULT,
                      DEFAULT_BAND_WIDTH, block_rows=BLOCK)
    rows["banded"] = {
        "wall_time_s": wall, "score": int(bo.score),
        "cells_computed": int(bo.cells_computed), "gcups": cells / wall / 1e9,
        "saturated": bo.saturated}

    wall, xo = _timed(xdrop_score, a, b, DNA_DEFAULT, DEFAULT_XDROP_X)
    rows["xdrop"] = {
        "wall_time_s": wall, "score": int(xo.score),
        "cells_computed": int(xo.cells_computed), "gcups": cells / wall / 1e9}

    # auto: banded heuristic + confidence check, exact re-run on failure.
    t0 = time.perf_counter()
    bo2 = adaptive_banded_score(a, b, DNA_DEFAULT, DEFAULT_BAND_WIDTH,
                                block_rows=BLOCK)
    decision = assess_heuristic(bo2.best, m, n, DNA_DEFAULT,
                                saturated=bo2.saturated)
    if decision.confident:
        score, tier = int(bo2.score), "banded"
    else:
        out = compute_blocked(a, b, DNA_DEFAULT,
                              block_rows=BLOCK, block_cols=BLOCK)
        score, tier = int(out.best.score), "exact"
    wall = time.perf_counter() - t0
    rows["auto"] = {
        "wall_time_s": wall, "score": score, "tier": tier,
        "escalated": tier == "exact", "gcups": cells / wall / 1e9}
    return rows


def test_x10_heuristic_speedup(benchmark):
    print_header("X10 heuristic tier",
                 f">= {MIN_SPEEDUP:.0f}x wall-clock speedup of banded/xdrop "
                 f"over exact on a {SNP_RATE:.0%}-divergence pair")
    rng = np.random.default_rng(10)
    a = random_dna(N, rng=rng)
    similar = _mutated(rng, a, SNP_RATE)
    divergent = random_dna(N, rng=rng)

    sim_rows = _run_modes(a, similar, exact=True)
    div_rows = _run_modes(a, divergent, exact=True)

    mega_a = random_dna(MEGA_N, rng=rng)
    mega_b = _mutated(rng, mega_a, SNP_RATE)
    mega_rows = _run_modes(mega_a, mega_b, exact=False)

    def table(rows):
        return format_table(
            ["mode", "wall time", "GCUPS (matrix)", "score", "cells computed"],
            [[mode,
              f"{r['wall_time_s']:.3f}s",
              f"{r['gcups']:.3f}",
              str(r["score"]),
              f"{r.get('cells_computed', 0):,}"] for mode, r in rows.items()])

    print(f"similar pair ({N:,} x {N:,}, {SNP_RATE:.0%} SNPs):")
    print(table(sim_rows))
    print(f"\ndivergent pair ({N:,} x {N:,}):")
    print(table(div_rows))
    print(f"\nmegabase-scale heuristic-only pair ({MEGA_N:,} x {MEGA_N:,}):")
    print(table(mega_rows))

    exact_s = sim_rows["exact"]["wall_time_s"]
    banded_speedup = exact_s / sim_rows["banded"]["wall_time_s"]
    xdrop_speedup = exact_s / sim_rows["xdrop"]["wall_time_s"]
    print(f"\nspeedup over exact (similar pair): banded {banded_speedup:.1f}x, "
          f"xdrop {xdrop_speedup:.1f}x")

    record = {
        "experiment": "x10_heuristic",
        "n": N,
        "mega_n": MEGA_N,
        "snp_rate": SNP_RATE,
        "block_rows": BLOCK,
        "band_width": DEFAULT_BAND_WIDTH,
        "xdrop_x": DEFAULT_XDROP_X,
        "tiny": TINY,
        "similar": sim_rows,
        "divergent": div_rows,
        "megabase": mega_rows,
        "banded_speedup": banded_speedup,
        "xdrop_speedup": xdrop_speedup,
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The differential contract, at benchmark scale.
    assert sim_rows["banded"]["score"] == sim_rows["exact"]["score"]
    assert sim_rows["auto"]["score"] == sim_rows["exact"]["score"]
    assert sim_rows["auto"]["tier"] == "banded", \
        "similar pair must not escalate"
    assert div_rows["auto"]["tier"] == "exact", \
        "divergent pair must escalate"
    assert div_rows["auto"]["score"] == div_rows["exact"]["score"]
    for mode in ("banded", "xdrop"):
        assert sim_rows[mode]["score"] <= sim_rows["exact"]["score"]
        assert div_rows[mode]["score"] <= div_rows["exact"]["score"]

    # The speedup claim.  X-drop's per-anti-diagonal Python overhead only
    # amortises at real scale, so its wall-clock bound is full-size only
    # (the TINY smoke still pins its correctness above).
    assert banded_speedup >= MIN_SPEEDUP, (
        f"banded only {banded_speedup:.1f}x over exact "
        f"(bound {MIN_SPEEDUP:.0f}x)")
    if not TINY:
        assert xdrop_speedup >= MIN_SPEEDUP, (
            f"xdrop only {xdrop_speedup:.1f}x over exact "
            f"(bound {MIN_SPEEDUP:.0f}x)")

    benchmark(adaptive_banded_score, a[:1024], similar[:1024], DNA_DEFAULT,
              DEFAULT_BAND_WIDTH, block_rows=128)
