"""X4 — extension: the chain across nodes (interconnect sensitivity).

The paper's strategy confined the chain to one host; extending it across
nodes adds a network hop to boundary channels.  The harness compares a
4-GPU single-host chain against 2+2 across two hosts for a range of
interconnects, printing where the network starts to gate the wavefront.
"""

from __future__ import annotations

from repro.comm import NetworkLink
from repro.device import TESLA_M2090, homogeneous
from repro.multigpu import ChainConfig, ClusterChain, MultiGpuChain, Node, PhantomWorkload
from repro.perf import format_table

from bench_helpers import print_header

ROWS = COLS = 20_000_000
CFG = ChainConfig(block_rows=8192, channel_capacity=8)

LINKS = (
    NetworkLink(gbps=7.0, latency_s=2e-6, name="InfiniBand FDR"),
    NetworkLink(gbps=1.25, latency_s=20e-6, name="10 GbE"),
    NetworkLink(gbps=0.125, latency_s=50e-6, name="1 GbE"),
    # Slow enough that one 64 KiB border segment outlasts a block-row
    # compute at this slab width — the link becomes the pipeline period.
    NetworkLink(gbps=1e-5, latency_s=2e-4, name="80 kbps WAN"),
)


def run_cluster(link: NetworkLink):
    nodes = [Node("n0", homogeneous(TESLA_M2090, 2), uplink=link),
             Node("n1", homogeneous(TESLA_M2090, 2))]
    return ClusterChain(nodes, config=CFG).run(PhantomWorkload(ROWS, COLS))


def test_x4_cluster_interconnects(benchmark):
    print_header("X4 cluster", "the chain extends across nodes until the link gates it")
    single = MultiGpuChain(homogeneous(TESLA_M2090, 4), config=CFG).run(
        PhantomWorkload(ROWS, COLS))
    rows = [["single host (4 GPUs)", f"{single.gcups:.2f}", "-"]]
    results = {}
    for link in LINKS:
        res = run_cluster(link)
        results[link.name] = res
        rows.append([f"2+2 over {link.name}", f"{res.gcups:.2f}",
                     f"{res.gcups / single.gcups:.1%}"])
    print(format_table(["configuration", "GCUPS", "vs single host"], rows))

    # Fast links preserve the single-host rate; the WAN link gates it.
    assert results["InfiniBand FDR"].gcups > 0.99 * single.gcups
    assert results["10 GbE"].gcups > 0.97 * single.gcups
    assert results["80 kbps WAN"].gcups < 0.6 * single.gcups

    benchmark(run_cluster, LINKS[1])
