"""F8 — stage costs: why the traceback needs crossing-point partitioning.

The paper distributes *stage 1* (the score pass) across GPUs and leaves
the traceback centralized.  For that design to work, the traceback must
be cheap relative to stage 1 — which is **not** automatic: a monolithic
Myers-Miller reconstruction re-sweeps the whole alignment region about
twice, costing ~3x the score pass.  The system family's special-row
machinery exists precisely to fix this: crossing points confine stage 3
to narrow partitions hugging the optimal path (total area ~ m x interval
instead of m x n).

The harness measures real wall-clock for stage 1, the monolithic
traceback, and the partitioned traceback on a compute-mode homolog pair,
asserting the partitioned path is several times cheaper than the
monolithic one and costs less than stage 1 itself.
"""

from __future__ import annotations

import time

from repro.seq import DNA_DEFAULT
from repro.sw import align_local, align_local_partitioned, stage1_score
from repro.perf import format_table
from repro.workloads import get_pair, synthesize_pair

from bench_helpers import print_header

SCALE = 2e-4  # ~7 kbp x 7 kbp, 49 Mcells
INTERVAL = 256


def run():
    human, chimp = synthesize_pair(get_pair("chr22"), scale=SCALE, seed=0)

    t0 = time.perf_counter()
    s1 = stage1_score(human, chimp, DNA_DEFAULT)
    t_score = time.perf_counter() - t0

    t0 = time.perf_counter()
    mono = align_local(human, chimp, DNA_DEFAULT)
    t_mono = time.perf_counter() - t0

    t0 = time.perf_counter()
    part = align_local_partitioned(human, chimp, DNA_DEFAULT,
                                   special_interval=INTERVAL)
    t_part = time.perf_counter() - t0

    assert mono.score == part.score == s1.score
    return t_score, t_mono, t_part, human.size * chimp.size


def test_f8_traceback_strategies(benchmark):
    print_header("F8 stage costs",
                 "crossing-point partitioning makes the traceback cheap")
    t_score, t_mono, t_part, cells = run()
    # Both align_local* calls internally re-run stage 1; subtract it to
    # compare the *traceback* portion (stages 2+) of each strategy.
    trace_mono = t_mono - t_score
    trace_part = t_part - t_score
    rows = [
        ["stage 1 score pass", f"{t_score * 1e3:.0f} ms", "1.0x"],
        ["monolithic traceback (stages 2+3)", f"{trace_mono * 1e3:.0f} ms",
         f"{trace_mono / t_score:.1f}x"],
        [f"partitioned traceback (interval {INTERVAL})", f"{trace_part * 1e3:.0f} ms",
         f"{trace_part / t_score:.1f}x"],
    ]
    print(format_table(["phase", "wall time", "vs stage 1"], rows))
    print(f"(matrix: {cells / 1e6:.0f} Mcells; identical scores asserted)")

    # Partitioning must cut the traceback cost decisively (the monolithic
    # Myers-Miller re-sweeps the whole region ~2x; partitions hug the
    # path), and the remaining cost is ~one reverse pass + small
    # partitions — the same order as stage 1 itself.
    assert trace_part < 0.65 * trace_mono
    assert trace_part < 2.8 * t_score

    benchmark(run)
