"""T3 — GCUPS on environment 2 (homogeneous Tesla pair), per chromosome pair.

Paper: the strategy was evaluated on "2 different GPU environments"
(abstract); ENV2 models the homogeneous compute-node configuration.  The
harness prints per-pair GCUPS for 1 and 2 devices and asserts near-2x
scaling (homogeneous slabs are balanced, so the chain's steady state is
device-bound).
"""

from __future__ import annotations

from repro.multigpu import time_multi_gpu
from repro.perf import format_table
from repro.workloads import PAPER_PAIRS

from bench_helpers import paper_config, print_header


def run_pair(pair, devices):
    return time_multi_gpu(pair.human_len, pair.chimp_len, devices,
                          config=paper_config())


def test_t3_homogeneous_gcups(benchmark, env2):
    print_header("T3 ENV2 GCUPS", "homogeneous pair scales the single-device rate")
    rows = []
    for pair in PAPER_PAIRS:
        one = run_pair(pair, env2[:1])
        two = run_pair(pair, env2)
        ratio = two.gcups / one.gcups
        rows.append([pair.name, f"{one.gcups:.2f}", f"{two.gcups:.2f}", f"{ratio:.3f}x"])
        assert ratio > 1.9  # near-linear at megabase scale
    print(format_table(["pair", "1 GPU", "2 GPUs", "scaling"], rows))

    benchmark(run_pair, PAPER_PAIRS[0], env2)
