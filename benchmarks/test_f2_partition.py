"""F2 — heterogeneous load balance: proportional vs equal slabs.

Paper: slab widths are proportional to each GPU's compute power so a
heterogeneous chain advances at the aggregate rate; an equal split is
gated by the slowest device.  The harness compares the two partitions on
ENV1 at paper scale and prints the per-device utilisation, asserting that
the proportional split wins by at least the heterogeneity ratio implies.
"""

from __future__ import annotations

from repro.multigpu import explicit_partition, imbalance, time_multi_gpu
from repro.perf import format_table

from bench_helpers import paper_config, print_header

ROWS = COLS = 20_000_000


def run_proportional(env1):
    return time_multi_gpu(ROWS, COLS, env1, config=paper_config())


def run_equal(env1):
    k = len(env1)
    widths = [COLS // k] * (k - 1) + [COLS - (k - 1) * (COLS // k)]
    return time_multi_gpu(ROWS, COLS, env1, config=paper_config(),
                          partition=explicit_partition(COLS, widths))


def test_f2_partition_strategies(benchmark, env1):
    print_header("F2 partitioning", "proportional slabs balance heterogeneous GPUs")
    prop = run_proportional(env1)
    equal = run_equal(env1)

    rows = []
    for label, res in (("proportional", prop), ("equal", equal)):
        imb = imbalance(res.partition, [d.gcups for d in env1])
        idle = max(bd["idle"] + bd["wait"] for bd in res.breakdown())
        rows.append([label, f"{res.gcups:.2f}", f"{imb:.2f}", f"{idle:.1%}"])
    print(format_table(["partition", "GCUPS", "imbalance", "worst idle+wait"], rows))

    # The equal split is gated by the slowest device: aggregate ≈ k * slowest.
    slowest = min(d.gcups for d in env1)
    assert equal.gcups < len(env1) * slowest * 1.05
    # Proportional recovers the aggregate rate.
    assert prop.gcups > 0.95 * sum(d.gcups for d in env1)
    assert prop.gcups > 1.25 * equal.gcups

    benchmark(run_proportional, env1)
