"""X8 — distributed block pruning across the multi-GPU engines.

A high-similarity mutated self-comparison (the workload block pruning
exists for) runs with pruning off and on through the simulated chain and
the real-process backend, under both block kernels.  Pruning must not
change any score or end cell, must prune a substantial fraction of the
blocks (the chain-wide scoreboard lets every worker skip its off-diagonal
corners), and must deliver a measurable wall-clock GCUPS gain on the
process backend — on this single-box harness the workers timeshare the
cores, so wall time tracks the total cells actually computed, exactly
the quantity pruning removes.  The process runs go through one persistent
:class:`~repro.multigpu.pool.WorkerPool` per kernel so process startup
stays out of the timings.  Results land in ``benchmarks/BENCH_pruning.json``.

Set ``MGSW_X8_TINY=1`` for the CI smoke configuration (a few-hundred-bp
matrix: exactness and pruning-ratio checks only, no timing assertions).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.device import TESLA_M2090
from repro.multigpu import ChainConfig, MatrixWorkload, MultiGpuChain, WorkerPool
from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.sw import KERNELS
from repro.workloads import HUMAN_CHIMP, mutate, random_dna

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X8_TINY"))
M = 768 if TINY else 4_096       # rows; cols follow the mutated copy (~M)
BLOCK = 64 if TINY else 256      # block-row height
WORKERS = 4
REPEATS = 1 if TINY else 2       # best-of for the wall-clock numbers
MIN_PRUNED_RATIO = 0.25          # acceptance bound (typical is ~1/3)
MIN_PROCESS_GAIN = 1.05          # pruning-on GCUPS / pruning-off GCUPS
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_pruning.json"


def _sim_run(a, b, kernel: str, pruning: bool):
    chain = MultiGpuChain(
        [TESLA_M2090] * WORKERS,
        config=ChainConfig(block_rows=BLOCK, kernel=kernel, pruning=pruning))
    return chain.run(MatrixWorkload(a, b, DNA_DEFAULT))


def _pool_best_run(pool, a, b, kernel: str, pruning: bool):
    best = None
    for _ in range(REPEATS):
        run = pool.align(a, b, DNA_DEFAULT, block_rows=BLOCK,
                         kernel=kernel, pruning=pruning)
        if best is None or run.wall_time_s < best.wall_time_s:
            best = run
    return best


def test_x8_distributed_pruning(benchmark):
    print_header("X8 distributed pruning",
                 "chain-wide scoreboard pruning skips >= 25% of blocks on "
                 "similar sequences without changing any result")
    rng = np.random.default_rng(8)
    a = random_dna(M, rng=rng)
    b = mutate(a, HUMAN_CHIMP, rng=rng)
    cells = int(a.size) * int(b.size)

    runs: dict[tuple[str, str, bool], object] = {}
    for kernel in KERNELS:
        for pruning in (False, True):
            runs[("simulated", kernel, pruning)] = _sim_run(a, b, kernel, pruning)
        with WorkerPool(WORKERS, max_block_rows=BLOCK) as pool:
            for pruning in (False, True):
                runs[("process", kernel, pruning)] = _pool_best_run(
                    pool, a, b, kernel, pruning)

    scores = {(r.score, r.best.row, r.best.col) for r in runs.values()}
    assert len(scores) == 1, f"engines disagree under pruning: {scores}"

    def wall(res):  # simulated results report virtual time
        return res.total_time_s if hasattr(res, "total_time_s") else res.wall_time_s

    table = []
    record_runs = {}
    for (backend, kernel, pruning), res in sorted(runs.items()):
        gcups = cells / wall(res) / 1e9
        ratio = res.pruned_ratio if pruning else 0.0
        table.append([backend, kernel, "on" if pruning else "off",
                      f"{gcups:.4f}", f"{res.blocks_pruned}/{res.blocks_checked}"
                      if pruning else "-", f"{ratio:.1%}" if pruning else "-"])
        record_runs[f"{backend}_{kernel}_{'on' if pruning else 'off'}"] = {
            "gcups": gcups,
            "time_s": wall(res),
            "blocks_checked": res.blocks_checked,
            "blocks_pruned": res.blocks_pruned,
            "pruned_ratio": res.pruned_ratio,
        }
    print(format_table(
        ["backend", "kernel", "pruning", "GCUPS", "blocks pruned", "ratio"],
        table))

    proc_on = runs[("process", "scalar", True)]
    gains = {
        kernel: (wall(runs[("process", kernel, False)])
                 / wall(runs[("process", kernel, True)]))
        for kernel in KERNELS
    }
    for kernel in KERNELS:
        print(f"process {kernel}: pruning speedup {gains[kernel]:.2f}x")

    some = runs[("process", "scalar", True)].score
    record = {
        "experiment": "x8_distributed_pruning",
        "matrix": {"rows": int(a.size), "cols": int(b.size)},
        "block_rows": BLOCK,
        "workers": WORKERS,
        "repeats": REPEATS,
        "tiny": TINY,
        "score": some,
        "runs": record_runs,
        "process_gain": gains,
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert proc_on.pruned_ratio >= MIN_PRUNED_RATIO, (
        f"only {proc_on.pruned_ratio:.1%} of blocks pruned "
        f"(need {MIN_PRUNED_RATIO:.0%})")
    if not TINY:
        assert max(gains.values()) >= MIN_PROCESS_GAIN, (
            f"pruning gained only {max(gains.values()):.2f}x wall-clock on "
            f"the process backend (need {MIN_PROCESS_GAIN}x)")

    benchmark(_sim_run, a[:256], b[:256], "batched", True)
