"""T2 — GCUPS on environment 1 (3 heterogeneous GPUs), per chromosome pair.

Paper claim (abstract): "obtaining a performance of up to 140.36 GCUPS
with 3 heterogeneous GPUs".  This harness runs every chromosome pair at
paper scale in timing mode on ENV1 with 1, 2 and 3 devices and prints the
GCUPS table; the shape checks assert the headline (~140.3 with all three)
and that adding devices monotonically increases throughput.
"""

from __future__ import annotations

from repro.multigpu import time_multi_gpu
from repro.perf import format_table, humanize_time
from repro.workloads import PAPER_PAIRS

from bench_helpers import paper_config, print_header


def run_pair(pair, devices):
    return time_multi_gpu(pair.human_len, pair.chimp_len, devices,
                          config=paper_config())


def test_t2_heterogeneous_gcups(benchmark, env1):
    print_header("T2 ENV1 GCUPS", "up to 140.36 GCUPS with 3 heterogeneous GPUs")
    rows = []
    best_overall = 0.0
    for pair in PAPER_PAIRS:
        cells = []
        for k in (1, 2, 3):
            res = run_pair(pair, env1[:k])
            cells.append(res)
        best_overall = max(best_overall, cells[-1].gcups)
        rows.append([
            pair.name,
            humanize_time(cells[-1].total_time_s),
            *(f"{r.gcups:.2f}" for r in cells),
        ])
        # Monotone in device count for every pair.
        assert cells[0].gcups < cells[1].gcups < cells[2].gcups
    print(format_table(
        ["pair", "time (3 GPUs)", "1 GPU", "2 GPUs", "3 GPUs (GCUPS)"], rows))
    print(f"best observed: {best_overall:.2f} GCUPS (paper: 140.36)")

    # The headline: within 1 GCUPS of the paper's 140.36.
    assert abs(best_overall - 140.36) < 1.0

    benchmark(run_pair, PAPER_PAIRS[0], env1)
