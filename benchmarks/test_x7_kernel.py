"""X7 — scalar vs batched block kernel on a multi-block wavefront workload.

Wall-clock numbers from the single-device blocked executor: one 2048 x 2048
comparison cut into 64 x 64 blocks (a 32 x 32 grid, so interior wavefronts
hold 32 blocks) runs once per kernel.  The batched kernel pays the
interpreted row loop once per *anti-diagonal* instead of once per *block*
— the same amortisation a GPU gets from batching kernel launches — so it
must deliver at least the 2x bound asserted here while staying bit-identical
on the score and end point.  Measured GCUPS land in
``benchmarks/BENCH_kernel.json`` for regression tracking.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.sw import KERNELS, KernelWorkspace, compute_blocked
from repro.workloads import random_dna

from bench_helpers import print_header

ROWS = 2_048
COLS = 2_048
BLOCK = 64               # 32 x 32 grid -> wavefronts of up to 32 blocks
REPEATS = 3              # best-of to shed scheduler noise
MIN_SPEEDUP = 2.0        # the acceptance bound; typical is 3-4x
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_kernel.json"


def _best_run(a, b, kernel: str):
    workspace = KernelWorkspace()  # reused across repeats, like the engines
    best_s, out = None, None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run = compute_blocked(a, b, DNA_DEFAULT, block_rows=BLOCK,
                              block_cols=BLOCK, kernel=kernel,
                              workspace=workspace)
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s, out = elapsed, run
    return best_s, out


def test_x7_kernel_comparison(benchmark):
    print_header("X7 kernel comparison",
                 "batched wavefront sweeps beat per-block sweeps >= 2x (wall clock)")
    rng = np.random.default_rng(41)
    a = random_dna(ROWS, rng=rng)
    b = random_dna(COLS, rng=rng)

    runs = {k: _best_run(a, b, k) for k in KERNELS}
    bests = {r.best for _, r in runs.values()}
    assert len(bests) == 1, "kernels disagree on the best cell"

    cells = ROWS * COLS
    gcups = {k: cells / s / 1e9 for k, (s, _) in runs.items()}
    rows = [[k, f"{gcups[k]:.4f}", f"{runs[k][0]:.3f}s",
             f"{cells / 1e6:.1f} Mcells"]
            for k in KERNELS]
    print(format_table(["kernel", "GCUPS (wall)", "wall time", "matrix"], rows))
    speedup = gcups["batched"] / gcups["scalar"]
    print(f"batched/scalar speedup: {speedup:.2f}x")

    best = runs["scalar"][1].best
    record = {
        "experiment": "x7_kernel",
        "matrix": {"rows": ROWS, "cols": COLS},
        "block": BLOCK,
        "repeats": REPEATS,
        "score": best.score,
        "end": [best.row, best.col],
        "gcups": gcups,
        "wall_time_s": {k: runs[k][0] for k in KERNELS},
        "speedup": speedup,
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"batched kernel only {speedup:.2f}x over scalar (need {MIN_SPEEDUP}x)")

    benchmark(compute_blocked, a, b, DNA_DEFAULT, block_rows=BLOCK,
              block_cols=BLOCK, kernel="batched")
