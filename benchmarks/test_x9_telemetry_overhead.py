"""X9 — telemetry overhead on the X7 workload (process backend).

Observability must stay off the hot path: the metrics registry hooks are
``is not None`` guards inside the slab sweep and the heartbeat is three
aligned shared-memory stores per phase transition, so arming the full
bundle (registry + progress board + watchdog) on the X7 reference
workload — one 2048 x 2048 comparison cut into 64-row block rows — must
cost < 3% wall clock against the bare run.  Both variants run through
``align_multi_process`` best-of-``REPEATS``; the telemetry run also
checks the counters balanced (every block accounted for), so the number
being compared is a *working* telemetry pass, not a disabled one.

Set ``MGSW_X9_TINY=1`` for the CI smoke configuration.  Results land in
``benchmarks/BENCH_telemetry.json`` (`mgsw perf diff` target).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

import numpy as np

from repro.multigpu import align_multi_process
from repro.obs import MetricsRegistry
from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.workloads import random_dna

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X9_TINY"))
ROWS = 512 if TINY else 2_048
COLS = 512 if TINY else 2_048
BLOCK = 64                       # the X7 grid geometry
WORKERS = 2
REPEATS = 2 if TINY else 3       # best-of to shed scheduler noise
MAX_OVERHEAD_FRAC = 0.03         # the acceptance bound
#: Small runs finish in tens of milliseconds, where one scheduler hiccup
#: dwarfs any real telemetry cost; accept that much in absolute terms.
ABS_SLACK_S = 0.15
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_telemetry.json"


def _best_run(a, b, *, telemetry: bool):
    best_s, best_res, reg = None, None, None
    for _ in range(REPEATS):
        metrics = MetricsRegistry() if telemetry else None
        t0 = time.perf_counter()
        res = align_multi_process(
            a, b, DNA_DEFAULT, workers=WORKERS, block_rows=BLOCK,
            metrics=metrics,
            heartbeat_s=30.0 if telemetry else None)
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s, best_res, reg = elapsed, res, metrics
    return best_s, best_res, reg


def test_x9_telemetry_overhead(benchmark):
    print_header("X9 telemetry overhead",
                 "metrics + heartbeat cost < 3% wall clock on the X7 workload")
    rng = np.random.default_rng(9)
    a = random_dna(ROWS, rng=rng)
    b = random_dna(COLS, rng=rng)

    bare_s, bare, _ = _best_run(a, b, telemetry=False)
    tel_s, tel, reg = _best_run(a, b, telemetry=True)

    assert (bare.score, bare.best.row, bare.best.col) == \
        (tel.score, tel.best.row, tel.best.col), "telemetry changed the result"
    # The instrumented run really measured: the block grid balances.
    n_blocks = math.ceil(ROWS / BLOCK) * WORKERS
    assert reg.counter("blocks_computed").total() == n_blocks
    assert reg.counter("cells_computed").total() == ROWS * COLS
    assert reg.counter("worker_stalls").total() == 0

    overhead_s = tel_s - bare_s
    overhead_frac = overhead_s / bare_s
    cells = ROWS * COLS
    print(format_table(
        ["variant", "wall time", "GCUPS (wall)"],
        [["bare", f"{bare_s:.3f}s", f"{cells / bare_s / 1e9:.4f}"],
         ["telemetry", f"{tel_s:.3f}s", f"{cells / tel_s / 1e9:.4f}"]]))
    print(f"telemetry overhead: {overhead_s * 1e3:+.1f} ms "
          f"({overhead_frac:+.1%} of {bare_s:.3f}s)")

    record = {
        "experiment": "x9_telemetry_overhead",
        "matrix": {"rows": ROWS, "cols": COLS},
        "block_rows": BLOCK,
        "workers": WORKERS,
        "repeats": REPEATS,
        "tiny": TINY,
        "score": bare.score,
        "bare_wall_time_s": bare_s,
        "telemetry_wall_time_s": tel_s,
        "overhead_frac": overhead_frac,
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert overhead_s <= max(MAX_OVERHEAD_FRAC * bare_s, ABS_SLACK_S), (
        f"telemetry cost {overhead_s * 1e3:.1f} ms "
        f"({overhead_frac:.1%}) over the bare run "
        f"(bound: {MAX_OVERHEAD_FRAC:.0%} or {ABS_SLACK_S * 1e3:.0f} ms)")

    benchmark(align_multi_process, a[:256], b[:256], DNA_DEFAULT,
              workers=WORKERS, block_rows=BLOCK, metrics=MetricsRegistry())
