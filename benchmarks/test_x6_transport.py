"""X6 — real-process border transports: shared-memory ring vs pipe.

Unlike F1-F8/X1-X5 these are *wall-clock* numbers from the real-process
backend (`repro.multigpu.procchain`), not virtual-clock results: the same
comparison runs once per transport and the measured GCUPS land in
``benchmarks/BENCH_transport.json`` for regression tracking.  The shm ring
hands borders over zero-copy, so it should never lose to pickling them
through a pipe; wall-clock noise on a loaded CI box gets a small tolerance.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.multigpu import TRANSPORTS, align_multi_process
from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.workloads import random_dna

from bench_helpers import print_header

ROWS = 3_000
COLS = 4_500
WORKERS = 3
BLOCK_ROWS = 64          # small blocks -> many border messages per boundary
REPEATS = 2              # best-of to shed scheduler noise
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_transport.json"


def _best_run(a, b, transport: str):
    best = None
    for _ in range(REPEATS):
        res = align_multi_process(a, b, DNA_DEFAULT, workers=WORKERS,
                                  block_rows=BLOCK_ROWS, transport=transport)
        if best is None or res.wall_time_s < best.wall_time_s:
            best = res
    return best


def test_x6_transport_comparison(benchmark):
    print_header("X6 transport comparison",
                 "shm border rings match or beat pipes at scale (wall clock)")
    rng = np.random.default_rng(77)
    a = random_dna(ROWS, rng=rng)
    b = random_dna(COLS, rng=rng)

    results = {t: _best_run(a, b, t) for t in TRANSPORTS}
    scores = {r.score for r in results.values()}
    assert len(scores) == 1, "transports disagree on the score"

    rows = [[t, f"{r.gcups:.4f}", f"{r.wall_time_s:.3f}s",
             f"{(ROWS * COLS) / 1e6:.1f} Mcells"]
            for t, r in results.items()]
    print(format_table(["transport", "GCUPS (wall)", "wall time", "matrix"], rows))

    record = {
        "experiment": "x6_transport",
        "matrix": {"rows": ROWS, "cols": COLS},
        "workers": WORKERS,
        "block_rows": BLOCK_ROWS,
        "repeats": REPEATS,
        "score": results["shm"].score,
        "gcups": {t: results[t].gcups for t in TRANSPORTS},
        "wall_time_s": {t: results[t].wall_time_s for t in TRANSPORTS},
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Soft bound: zero-copy must not *lose* to pickled pipes by more than
    # scheduler noise.  (Typically it wins outright; see the JSON.)
    assert results["shm"].gcups >= 0.85 * results["pipe"].gcups

    benchmark(align_multi_process, a, b, DNA_DEFAULT, workers=WORKERS,
              block_rows=BLOCK_ROWS, transport="shm")
