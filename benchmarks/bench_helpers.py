"""Shared helpers for the benchmark harness (see conftest for fixtures).

Each ``test_*`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index) and prints the reproduced
rows; ``pytest benchmarks/ --benchmark-only -s`` shows them.  The
pytest-benchmark timings measure the *harness* (simulator wall time);
the scientific quantities — GCUPS, speedups, overhead fractions — are
virtual-clock results printed in the tables and asserted as shape checks.
"""

from __future__ import annotations

from repro.multigpu import ChainConfig

#: Block-row height used by the paper-scale timing runs.
PAPER_BLOCK_ROWS = 8192

#: Circular-buffer capacity used unless an experiment sweeps it.
PAPER_BUFFER = 8


def paper_config(**overrides) -> ChainConfig:
    base = dict(block_rows=PAPER_BLOCK_ROWS, channel_capacity=PAPER_BUFFER)
    base.update(overrides)
    return ChainConfig(**base)


def print_header(experiment: str, claim: str) -> None:
    print()
    print(f"=== {experiment} ===")
    print(f"paper claim: {claim}")
