"""F3 — communication hiding: overhead vs slab width, and the crossover.

Paper: border elements are communicated "using a circular buffer mechanism
that hides the communication overhead".  Hiding requires each device's
block-row compute time to exceed the channel's per-segment cost; below a
minimum slab width the chain becomes channel-bound.  The harness sweeps
the matrix width (hence slab width) on a deliberately slow PCIe variant of
ENV2, prints measured efficiency vs the analytic prediction, and asserts
the crossover sits where :func:`repro.multigpu.min_overlap_width` says.
"""

from __future__ import annotations

from repro.device import DeviceSpec
from repro.multigpu import (
    ChainConfig,
    min_overlap_width,
    proportional_partition,
    predict_chain,
    time_multi_gpu,
)
from repro.perf import format_table

from bench_helpers import print_header

#: A slow-link device so the crossover happens at modest widths.
SLOW = DeviceSpec("SlowLink", gcups=30.0, pcie_gbps=0.01, pcie_latency_s=50e-6,
                  saturation_cols=0)
DEVICES = (SLOW, SLOW)
BLOCK_ROWS = 1024
ROWS = 2_000_000


def run(cols: int):
    return time_multi_gpu(ROWS, cols, DEVICES,
                          config=ChainConfig(block_rows=BLOCK_ROWS,
                                             channel_capacity=8))


def test_f3_overlap_crossover(benchmark):
    print_header("F3 overlap", "circular buffer hides communication above a minimum slab width")
    w_min = min_overlap_width(SLOW, SLOW, BLOCK_ROWS)
    print(f"analytic minimum slab width for full overlap: {w_min} cols")

    aggregate = sum(d.gcups for d in DEVICES)
    rows = []
    for factor in (0.1, 0.25, 0.5, 1.0, 2.0, 8.0):
        cols = max(len(DEVICES), int(2 * w_min * factor))  # 2 slabs
        res = run(cols)
        slabs = proportional_partition(cols, [d.gcups for d in DEVICES])
        pred = predict_chain(DEVICES, slabs, ROWS,
                             ChainConfig(block_rows=BLOCK_ROWS, channel_capacity=8))
        eff = res.gcups / aggregate
        rows.append([
            f"{cols:,}", f"{cols // 2:,}", f"{res.gcups:.2f}", f"{eff:.1%}",
            f"{pred.gcups(ROWS * cols):.2f}", pred.bottleneck,
        ])
        if factor >= 2.0:
            assert eff > 0.9, f"overlap should hold at {factor}x the minimum width"
        if factor <= 0.25:
            assert eff < 0.8, f"chain should be channel-bound at {factor}x"
    print(format_table(
        ["matrix cols", "slab cols", "GCUPS", "efficiency", "predicted", "bottleneck"],
        rows))

    benchmark(run, int(2 * w_min))
