"""X1 — ablation: circular-buffer capacity (the paper's hiding mechanism).

With a fast link the buffer barely matters (compute dominates); with a
link whose per-segment cost is close to the block-row time, capacity-1
rendezvous serialises the hops and larger buffers recover throughput.
Also ablates async vs inline (synchronous) transfers.
"""

from __future__ import annotations

from repro.device import DeviceSpec
from repro.multigpu import ChainConfig, time_multi_gpu
from repro.perf import format_table

from bench_helpers import print_header

#: Link tuned so one hop ≈ 60% of a block-row compute: hiding is possible
#: but only with real buffering.
TIGHT = DeviceSpec("TightLink", gcups=30.0, pcie_gbps=0.0008, pcie_latency_s=1e-4,
                   saturation_cols=0)
DEVICES = (TIGHT, TIGHT, TIGHT)
ROWS = 2_000_000
COLS = 1_500_000
BLOCK_ROWS = 1024


def run(capacity: int, *, async_transfers: bool = True, device_slots: int = 2):
    return time_multi_gpu(
        ROWS, COLS, DEVICES,
        config=ChainConfig(block_rows=BLOCK_ROWS, channel_capacity=capacity,
                           device_slots=device_slots,
                           async_transfers=async_transfers),
    )


def test_x1_buffer_capacity(benchmark):
    print_header("X1 buffer ablation", "capacity >= 2 pipelines the hops; 1 degenerates to rendezvous")
    results = {}
    rows = []
    for cap in (1, 2, 4, 8, 16):
        res = run(cap, device_slots=1 if cap == 1 else 2)
        results[cap] = res
        rows.append([str(cap), f"{res.gcups:.2f}", f"{res.total_time_s:.1f}s"])
    sync = run(4, async_transfers=False)
    rows.append(["4 (sync xfers)", f"{sync.gcups:.2f}", f"{sync.total_time_s:.1f}s"])
    print(format_table(["buffer slots", "GCUPS", "virtual time"], rows))

    # Single-slot rendezvous is measurably slower; capacity 4+ saturates.
    assert results[1].gcups < results[4].gcups * 0.97
    assert abs(results[8].gcups - results[16].gcups) / results[16].gcups < 0.02
    # Inline transfers cost throughput relative to overlapped ones.
    assert sync.gcups < results[4].gcups

    benchmark(run, 4)
