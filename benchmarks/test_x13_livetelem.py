"""X13 — live-telemetry overhead on the X7 workload (process backend).

X9 bounded the *passive* telemetry bundle (metrics registry + progress
board + watchdog).  This experiment bounds the **live** stack added by
INTERNALS.md §13 on top of it: the 250 ms time-series sampler (here
armed at a much hotter 50 ms), the structured event journal spilling
``events.jsonl``, the timeline spilling ``timeline.jsonl``, and the
``/metrics`` + ``/status`` HTTP endpoint under an active scraper —
everything ``mgsw align --telemetry DIR --serve-metrics 0`` turns on
beyond what ``--telemetry`` alone already armed.  The baseline is
therefore the X9 configuration (registry + heartbeat), so the fraction
measured here is exactly the *sampler + journal + endpoint* increment;
all of it is parent-side (sampler thread, journal writes, HTTP
threads) — the slab workers run the identical hot path in both
variants — and it must cost < 5% wall clock.  A fully bare reference
run is also recorded so ``BENCH_livetelem.json`` shows the total
bare -> live cost alongside the bounded increment.

Set ``MGSW_X13_TINY=1`` for the CI smoke configuration.  Results land in
``benchmarks/BENCH_livetelem.json`` (`mgsw perf diff` target).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time
import urllib.request

import numpy as np

from repro.multigpu import align_multi_process
from repro.obs import (
    EventJournal,
    MetricsRegistry,
    StatusServer,
    TimeSeriesSampler,
    read_events,
    read_timeline,
)
from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.workloads import random_dna

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X13_TINY"))
#: Larger than the X7/X9 grid: the live stack's cost is dominated by
#: per-run constants (board + sampler + server setup, a handful of
#: journal writes), so the run must be long enough for a fraction-of-
#: wall-clock bound to measure amortised cost, not setup noise — and
#: long enough that the 100 ms scraper really hits the endpoint mid-run.
ROWS = 512 if TINY else 8_192
COLS = 512 if TINY else 8_192
BLOCK = 64                       # the X7 grid geometry
WORKERS = 2
REPEATS = 2 if TINY else 3       # best-of to shed scheduler noise
SAMPLE_INTERVAL_S = 0.05         # 5x hotter than the 250 ms default
SCRAPE_INTERVAL_S = 0.1          # an eager Prometheus agent
MAX_OVERHEAD_FRAC = 0.05         # the acceptance bound
#: Small runs finish in tens of milliseconds, where one scheduler hiccup
#: dwarfs any real telemetry cost; accept that much in absolute terms.
ABS_SLACK_S = 0.15
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_livetelem.json"


def _scrape_loop(url: str, stop: threading.Event, hits: list) -> None:
    while not stop.wait(SCRAPE_INTERVAL_S):
        try:
            for path in ("/metrics", "/status"):
                with urllib.request.urlopen(url + path, timeout=5) as resp:
                    resp.read()
            hits.append(1)
        except OSError:
            pass


def _live_run(a, b, outdir: pathlib.Path):
    """One fully armed run: registry + journal + sampler + scraped server."""
    registry = MetricsRegistry()
    journal = EventJournal(outdir / "events.jsonl")
    sampler = TimeSeriesSampler(interval_s=SAMPLE_INTERVAL_S,
                                spill=outdir / "timeline.jsonl",
                                registry=registry)
    server = StatusServer(registry=registry, sampler=sampler,
                          journal=journal).start()
    stop, hits = threading.Event(), []
    scraper = threading.Thread(
        target=_scrape_loop, args=(server.url, stop, hits), daemon=True)
    scraper.start()
    t0 = time.perf_counter()
    try:
        res = align_multi_process(
            a, b, DNA_DEFAULT, workers=WORKERS, block_rows=BLOCK,
            metrics=registry, heartbeat_s=30.0,
            events=journal, timeline=sampler)
        elapsed = time.perf_counter() - t0
    finally:
        stop.set()
        scraper.join(timeout=5)
        server.stop()
        sampler.close()
        journal.close()
    return elapsed, res, journal, sampler, len(hits)


def _best_plain(a, b, *, telemetry: bool):
    """Best-of-``REPEATS``: fully bare, or the X9 passive-telemetry
    baseline (registry + heartbeat) the live increment is measured
    against."""
    best_s, best_res = None, None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        res = align_multi_process(
            a, b, DNA_DEFAULT, workers=WORKERS, block_rows=BLOCK,
            metrics=MetricsRegistry() if telemetry else None,
            heartbeat_s=30.0 if telemetry else None)
        elapsed = time.perf_counter() - t0
        if best_s is None or elapsed < best_s:
            best_s, best_res = elapsed, res
    return best_s, best_res


def _best_live(a, b, tmp: pathlib.Path):
    best = None
    for i in range(REPEATS):
        outdir = tmp / f"rep{i}"
        outdir.mkdir()
        run = _live_run(a, b, outdir)
        if best is None or run[0] < best[0]:
            best = run + (outdir,)
    return best


def test_x13_livetelem_overhead(benchmark):
    print_header("X13 live-telemetry overhead",
                 "sampler + journal + scraped /metrics endpoint "
                 "cost < 5% wall clock over the passive-telemetry run")
    rng = np.random.default_rng(13)
    a = random_dna(ROWS, rng=rng)
    b = random_dna(COLS, rng=rng)

    bare_s, bare = _best_plain(a, b, telemetry=False)
    telem_s, _ = _best_plain(a, b, telemetry=True)
    with tempfile.TemporaryDirectory() as tmp:
        live_s, live, journal, sampler, scrapes, outdir = \
            _best_live(a, b, pathlib.Path(tmp))

        assert (bare.score, bare.best.row, bare.best.col) == \
            (live.score, live.best.row, live.best.col), \
            "live telemetry changed the result"

        # The instrumented run really ran live: lifecycle journaled,
        # timeline complete, and (except on very fast tiny runs) the
        # endpoint was actually scraped mid-run.
        kinds = [rec["event"] for rec in journal.recent()]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("worker_spawn") == WORKERS
        final = sampler.current()
        assert final is not None
        assert final.rows_done == final.rows_target == ROWS * WORKERS
        assert len(read_events(outdir / "events.jsonl")) == len(kinds)
        spilled = read_timeline(outdir / "timeline.jsonl")
        assert spilled and spilled[-1].rows_done == ROWS * WORKERS

    overhead_s = live_s - telem_s
    overhead_frac = overhead_s / telem_s
    cells = ROWS * COLS
    print(format_table(
        ["variant", "wall time", "GCUPS (wall)"],
        [["bare", f"{bare_s:.3f}s", f"{cells / bare_s / 1e9:.4f}"],
         ["passive telemetry (X9)", f"{telem_s:.3f}s",
          f"{cells / telem_s / 1e9:.4f}"],
         ["live telemetry", f"{live_s:.3f}s", f"{cells / live_s / 1e9:.4f}"]]))
    print(f"live-stack increment: {overhead_s * 1e3:+.1f} ms "
          f"({overhead_frac:+.1%} of {telem_s:.3f}s), "
          f"{scrapes} endpoint scrape(s) mid-run")

    record = {
        "experiment": "x13_livetelem_overhead",
        "matrix": {"rows": ROWS, "cols": COLS},
        "block_rows": BLOCK,
        "workers": WORKERS,
        "repeats": REPEATS,
        "sample_interval_s": SAMPLE_INTERVAL_S,
        "scrape_interval_s": SCRAPE_INTERVAL_S,
        "tiny": TINY,
        "score": bare.score,
        "bare_wall_time_s": bare_s,
        "telemetry_wall_time_s": telem_s,
        "live_wall_time_s": live_s,
        "overhead_frac": overhead_frac,
        "endpoint_scrapes": scrapes,
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert overhead_s <= max(MAX_OVERHEAD_FRAC * telem_s, ABS_SLACK_S), (
        f"the live stack cost {overhead_s * 1e3:.1f} ms "
        f"({overhead_frac:.1%}) over the passive-telemetry run "
        f"(bound: {MAX_OVERHEAD_FRAC:.0%} or {ABS_SLACK_S * 1e3:.0f} ms)")

    benchmark(align_multi_process, a[:256], b[:256], DNA_DEFAULT,
              workers=WORKERS, block_rows=BLOCK, metrics=MetricsRegistry())
