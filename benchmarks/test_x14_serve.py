"""X14 — serving throughput and tail latency under mixed tenant traffic.

The serving layer's contract (INTERNALS.md §14) is *quality of service*,
not raw GCUPS: under a mixed workload — several tenants, mostly small
interactive jobs, a repeat-heavy reference pair, and megabase-class long
jobs grinding in the background — short jobs must keep flowing (bounded
p99 latency, the fair-scheduler guarantee), repeats must come back from
the digest cache (bit-identical, near-free), and the daemon must admit
or reject, never wedge.  This experiment drives a live daemon over the
real TCP protocol with concurrent client threads and records jobs/s,
short-job p50/p99 latency, and the cache hit rate.

Set ``MGSW_X14_TINY=1`` for the CI smoke configuration.  Results land in
``benchmarks/BENCH_serve.json`` (`mgsw perf diff` target).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np

from repro.perf import format_table
from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.workloads import random_dna
from repro.seq import decode

from bench_helpers import print_header

TINY = bool(os.environ.get("MGSW_X14_TINY"))
TENANTS = 2 if TINY else 4             #: concurrent client threads
JOBS_PER_TENANT = 6 if TINY else 30
UNIQUE_PAIRS = 4 if TINY else 8        #: distinct short comparisons
SHORT_BP = 256 if TINY else 512        #: short-job sequence length
LONG_BP = 1024 if TINY else 3072       #: long-job sequence length
LONG_JOBS = 1 if TINY else 3           #: background megabase-class jobs
REPEAT_FRACTION = 0.5                  #: of short traffic re-submits pair 0
WORKERS = 2
#: Short-job p99 bound: a short job may sit behind the running job plus
#: one long pick (the 4:1 lane guarantee), so the bound is a couple of
#: long-job runtimes — generous for scheduler noise, far below the
#: queue-the-backlog latency a FIFO would show.
MAX_P99_S = 5.0 if TINY else 10.0
OUT_PATH = pathlib.Path(__file__).parent / "BENCH_serve.json"


def _traffic(rng: np.random.Generator) -> list[list[tuple[str, str, bool]]]:
    """Per-tenant job lists: (seq_a, seq_b, is_repeat)."""
    pairs = [(decode(random_dna(SHORT_BP, rng=rng)),
              decode(random_dna(SHORT_BP, rng=rng)))
             for _ in range(UNIQUE_PAIRS)]
    schedules = []
    for _ in range(TENANTS):
        jobs = []
        for _ in range(JOBS_PER_TENANT):
            if rng.random() < REPEAT_FRACTION:
                a, b = pairs[0]          # the popular reference pair
                jobs.append((a, b, True))
            else:
                a, b = pairs[rng.integers(1, UNIQUE_PAIRS)]
                jobs.append((a, b, False))
        schedules.append(jobs)
    return schedules


def _client_loop(port: int, tenant: str, jobs, out: list, errors: list):
    try:
        with ServeClient(port=port) as client:
            for a, b, is_repeat in jobs:
                t0 = time.perf_counter()
                resp = client.submit(seq_a=a, seq_b=b, tenant=tenant)
                if not resp.get("ok"):
                    if resp.get("code") == 429:   # admission backoff
                        time.sleep(0.05)
                        continue
                    raise RuntimeError(resp.get("error"))
                job = resp["job"]
                if job["state"] not in ("done", "failed"):
                    job = client.check(client.wait(
                        job["id"], timeout_s=300))["job"]
                latency = time.perf_counter() - t0
                out.append({"tenant": tenant, "lane": job["lane"],
                            "state": job["state"],
                            "cached": job.get("cached", False),
                            "repeat": is_repeat,
                            "score": (job.get("result") or {}).get("score"),
                            "latency_s": latency})
    except Exception as exc:  # surface on the main thread
        errors.append(f"{tenant}: {exc!r}")


def _pct(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def test_x14_serve_load(benchmark):
    print_header("X14 serving QoS under mixed traffic",
                 "short-job p99 latency stays bounded under long-job "
                 "pressure; repeats served from the digest cache")
    rng = np.random.default_rng(14)
    schedules = _traffic(rng)
    long_a = decode(random_dna(LONG_BP, rng=rng))
    long_b = decode(random_dna(LONG_BP, rng=rng))

    daemon = ServeDaemon(
        ServeConfig(pools=1, workers=WORKERS, queue_depth=256,
                    tenant_cap=JOBS_PER_TENANT + 2),
        status_port=None)
    daemon.start()
    results: list[dict] = []
    errors: list[str] = []
    t_start = time.perf_counter()
    try:
        with ServeClient(port=daemon.port) as background:
            # lane="long" pins the background jobs to the long lane even
            # in the tiny configuration, where they are under the
            # 4M-cell classification threshold.
            long_ids = [background.check(background.submit(
                seq_a=long_a, seq_b=long_b, tenant="batch", lane="long",
                use_cache=False))["job"]["id"] for _ in range(LONG_JOBS)]
            threads = [threading.Thread(
                target=_client_loop,
                args=(daemon.port, f"tenant{i}", schedules[i],
                      results, errors))
                for i in range(TENANTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            longs = [background.check(background.wait(
                jid, timeout_s=600))["job"] for jid in long_ids]
        wall_s = time.perf_counter() - t_start
        cache = daemon.cache.stats()
        queue = daemon.queue.stats()
    finally:
        daemon.stop()

    assert not errors, errors
    assert all(r["state"] == "done" for r in results), results
    assert all(j["state"] == "done" for j in longs)
    assert all(j["lane"] == "long" for j in longs)

    # Cache behaviour: every repeat after the first is a hit, and every
    # hit returned the same score as the cold run of that pair.
    by_repeat = [r for r in results if r["repeat"]]
    hits = [r for r in results if r["cached"]]
    assert len(hits) >= len(by_repeat) - TENANTS  # first touches may miss
    repeat_scores = {r["score"] for r in by_repeat}
    assert len(repeat_scores) == 1, "cache hit diverged from cold run"

    lat = sorted(r["latency_s"] for r in results)
    p50, p99 = _pct(lat, 0.50), _pct(lat, 0.99)
    jobs_per_s = len(results) / wall_s
    hit_rate = cache["hit_rate"]

    print(format_table(
        ["metric", "value"],
        [["jobs completed", str(len(results) + len(longs))],
         ["wall time", f"{wall_s:.3f}s"],
         ["short jobs/s", f"{jobs_per_s:.1f}"],
         ["p50 latency", f"{p50 * 1e3:.1f} ms"],
         ["p99 latency", f"{p99 * 1e3:.1f} ms"],
         ["cache hit rate", f"{hit_rate:.1%}"],
         ["long jobs done", str(len(longs))]]))

    record = {
        "experiment": "x14_serve_load",
        "tiny": TINY,
        "tenants": TENANTS,
        "jobs_per_tenant": JOBS_PER_TENANT,
        "unique_pairs": UNIQUE_PAIRS,
        "short_bp": SHORT_BP,
        "long_bp": LONG_BP,
        "long_jobs": LONG_JOBS,
        "workers": WORKERS,
        "jobs_completed": len(results) + len(longs),
        "wall_time_s": wall_s,
        "jobs_per_s": jobs_per_s,
        "p50_latency_s": p50,
        "p99_latency_s": p99,
        "cache_hit_rate": hit_rate,
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "queue_total": queue["total"],
        "recorded_unix": time.time(),
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert p99 <= MAX_P99_S, (
        f"short-job p99 latency {p99:.3f}s exceeds the {MAX_P99_S}s bound "
        "— the fair scheduler is letting long jobs starve the short lane")
    assert hit_rate > 0.2, f"cache hit rate {hit_rate:.1%} implausibly low"

    benchmark(daemon.handle_request, {"op": "stats"})
