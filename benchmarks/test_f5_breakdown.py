"""F5 — per-GPU execution-time breakdown (compute / transfer / wait / idle).

Paper: with communication hidden, every device should spend ≈100% of the
run computing (the overlap claim read from the other direction).  The
harness prints the breakdown for ENV1 at paper scale and for a
deliberately channel-bound configuration, asserting the contrast.
"""

from __future__ import annotations

from repro.device import DeviceSpec
from repro.multigpu import ChainConfig, time_multi_gpu
from repro.perf import format_table

from bench_helpers import paper_config, print_header

ROWS = COLS = 20_000_000


def run_env1(env1):
    return time_multi_gpu(ROWS, COLS, env1, config=paper_config())


def test_f5_time_breakdown(benchmark, env1):
    print_header("F5 breakdown", "communication hidden → devices ~100% compute")
    res = run_env1(env1)
    rows = [
        [g.name, f"{bd['compute']:.1%}", f"{bd['transfer']:.1%}",
         f"{bd['wait']:.1%}", f"{bd['idle']:.1%}"]
        for g, bd in zip(res.gpus, res.breakdown())
    ]
    print(format_table(["device", "compute", "transfer", "wait", "idle"], rows))
    for bd in res.breakdown():
        assert bd["compute"] > 0.97  # fully hidden at paper scale

    # Contrast: a starved chain (slow link, narrow matrix) shows waits.
    slow = DeviceSpec("SlowLink", gcups=30.0, pcie_gbps=0.001,
                      pcie_latency_s=1e-3, saturation_cols=0)
    starved = time_multi_gpu(300_000, 30_000, (slow, slow),
                             config=ChainConfig(block_rows=1024,
                                                channel_capacity=2))
    print()
    print("channel-bound contrast:")
    rows = [
        [g.name, f"{bd['compute']:.1%}", f"{bd['wait']:.1%}", f"{bd['idle']:.1%}"]
        for g, bd in zip(starved.gpus, starved.breakdown())
    ]
    print(format_table(["device", "compute", "wait", "idle"], rows))
    last = starved.breakdown()[-1]
    assert last["wait"] + last["idle"] > 0.2  # consumer starved by the link

    benchmark(run_env1, env1)
