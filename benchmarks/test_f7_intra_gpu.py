"""F7 — intra-GPU execution: GCUPS vs block height and slab width.

The single-GPU generation of this system family shows its throughput
climbing with the external-diagonal height (the internal thread-block
wavefront amortises its fill) and collapsing when the slab is too narrow
to occupy every SM.  With the :class:`~repro.device.smmodel.SMModel`
attached, the simulator reproduces both curves; this is also why the
multi-GPU partition keeps slabs wide.
"""

from __future__ import annotations

from dataclasses import replace

from repro.device import GTX_680, calibrated
from repro.multigpu import ChainConfig, time_multi_gpu
from repro.perf import format_table

from bench_helpers import print_header

SM = calibrated(GTX_680.gcups, sm_count=8, min_block_cols=2048, rows_per_step=8)
DEVICE = replace(GTX_680, sm_model=SM)


def run_height(block_rows: int):
    return time_multi_gpu(2_000_000, 2_000_000, [DEVICE],
                          config=ChainConfig(block_rows=block_rows))


def run_width(cols: int):
    return time_multi_gpu(2_000_000, cols, [DEVICE],
                          config=ChainConfig(block_rows=4096))


def test_f7_intra_gpu_curves(benchmark):
    print_header("F7 intra-GPU", "tall block rows + wide slabs fill the device")
    peak = SM.peak_gcups

    rows = []
    heights = (64, 256, 1024, 4096, 16384)
    gcups_h = []
    for r in heights:
        res = run_height(r)
        gcups_h.append(res.gcups)
        rows.append([f"R={r}", f"{res.gcups:.2f}", f"{res.gcups / peak:.1%}"])
    print(format_table(["block height", "GCUPS", "of peak"], rows))
    assert all(b > a for a, b in zip(gcups_h, gcups_h[1:]))  # monotone climb
    assert gcups_h[0] < 0.6 * peak       # short diagonals starve the pipeline
    assert gcups_h[-1] > 0.97 * peak     # tall ones saturate it

    rows = []
    widths = (2048, 4096, 8192, 16384, 262144)
    gcups_w = []
    for w in widths:
        res = run_width(w)
        gcups_w.append(res.gcups)
        rows.append([f"W={w}", f"{res.gcups:.2f}", f"{res.gcups / peak:.1%}"])
    print()
    print(format_table(["slab width", "GCUPS", "of peak"], rows))
    assert gcups_w[0] < 0.2 * peak       # 1 of 8 thread blocks busy
    assert gcups_w[-1] > 0.95 * peak
    assert all(b >= a for a, b in zip(gcups_w, gcups_w[1:]))

    benchmark(run_height, 4096)
