"""F4 — block pruning vs sequence similarity (single-GPU optimisation).

Paper lineage: CUDAlign's block pruning skips matrix blocks that provably
cannot improve the best score; its effectiveness grows with sequence
similarity (the human-chimp workloads are highly similar).  The harness
runs compute-mode single-GPU comparisons over an identity sweep and
prints pruned fraction and effective GCUPS uplift.
"""

from __future__ import annotations

from repro.baselines import run_single_gpu
from repro.device import GTX_680
from repro.perf import format_table
from repro.seq import DNA_DEFAULT
from repro.workloads import identity_pair

from bench_helpers import print_header

LENGTH = 1500


def run(identity: float):
    a, b = identity_pair(LENGTH, identity, seed=1)
    plain = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=64)
    pruned = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=64, prune=True)
    return plain, pruned


def test_f4_pruning_vs_similarity(benchmark):
    print_header("F4 pruning", "block pruning skips more work as similarity rises")
    rows = []
    fractions = []
    for identity in (0.5, 0.7, 0.9, 0.99):
        plain, pruned = run(identity)
        assert pruned.score == plain.score  # pruning is exact
        uplift = pruned.gcups / plain.gcups
        fractions.append(pruned.pruned_fraction)
        rows.append([
            f"{identity:.0%}", str(plain.score),
            f"{pruned.pruned_fraction:.1%}", f"{uplift:.2f}x",
        ])
    print(format_table(["identity", "score", "cells pruned", "GCUPS uplift"], rows))

    # Monotone (weakly) increasing pruning with similarity, and substantial
    # pruning at human-chimp-like identity.
    assert all(b >= a - 0.02 for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] > 0.4

    benchmark(run, 0.95)
