"""Fixtures for the benchmark harness (helpers live in bench_helpers.py)."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS


@pytest.fixture(scope="session")
def env1():
    return ENV1_HETEROGENEOUS


@pytest.fixture(scope="session")
def env2():
    return ENV2_HOMOGENEOUS
