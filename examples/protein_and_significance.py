#!/usr/bin/env python3
"""Beyond DNA: protein alignment and statistical significance.

The Smith-Waterman substrate underneath the multi-GPU chain is
alphabet-agnostic.  This example:

1. aligns two protein sequences with BLOSUM62 through the same kernels
   and traceback pipeline the DNA path uses, and
2. annotates a DNA comparison with Karlin-Altschul statistics — the exact
   lambda for the scoring scheme, a Monte-Carlo-fitted K, and the E-value
   of the observed score at chromosome scale.

Run:  python examples/protein_and_significance.py
"""

import numpy as np

from repro.seq import BLOSUM62_SCORING, DNA_DEFAULT, encode_protein
from repro.stats import dna_statistics
from repro.sw import align_local, sw_score
from repro.workloads import get_pair, synthesize_pair

# Two related globin fragments (diverged copies of one peptide).
HBB_HUMAN = "MVHLTPEEKSAVTALWGKVNVDEVGGEALGRLLVVYPWTQRFFESFGDLSTPDAVMGNPKVKAHGKKVLGA"
HBB_MOUSE = "MVHLTDAEKAAVSGLWGKVNADEVGGEALGRLLVVYPWTQRYFDSFGDLSSASAIMGNPKVKAHGKKVITA"


def main() -> None:
    # --- protein ---------------------------------------------------------
    a = encode_protein(HBB_HUMAN)
    b = encode_protein(HBB_MOUSE)
    aln = align_local(a, b, BLOSUM62_SCORING)
    aln.validate(a, b, BLOSUM62_SCORING)
    print(f"protein alignment (BLOSUM62, gap {BLOSUM62_SCORING.gap_open}/"
          f"{BLOSUM62_SCORING.gap_extend}):")
    x_code = encode_protein("X")[0]
    print(f"  score={aln.score}  identity={aln.identity(a, b, ambiguous=int(x_code)):.1%}  "
          f"CIGAR={aln.cigar()}")

    # --- DNA significance ---------------------------------------------------
    stats = dna_statistics(DNA_DEFAULT, k_samples=150, seed=0)
    print(f"\nDNA scheme statistics: lambda={stats.lam:.4f}  K={stats.k:.3f}")

    human, chimp = synthesize_pair(get_pair("chr22"), scale=1e-4, seed=0)
    best = sw_score(human, chimp, DNA_DEFAULT)
    m, n = human.size, chimp.size
    print(f"\nchr22 stand-in ({m:,} x {n:,}): score={best.score}")
    print(f"  bit score : {stats.bit_score(best.score):.1f} bits")
    print(f"  E-value   : {stats.evalue(best.score, m, n):.3g}")
    print(f"  P-value   : {stats.pvalue(best.score, m, n):.3g}")

    # What score would mere chance produce at FULL chromosome scale?
    pair = get_pair("chr22")
    t = stats.score_for_evalue(0.01, pair.human_len, pair.chimp_len)
    print(f"\nat full {pair.name} scale ({pair.human_len:,} x {pair.chimp_len:,}),")
    print(f"a score of just {t} already has E-value <= 0.01 — the homologs'")
    print(f"score of ~{best.score * 10_000:,} (extrapolated) is astronomically significant.")

    # Random (unrelated) sequences for contrast:
    rng = np.random.default_rng(1)
    r1 = rng.integers(0, 4, m).astype(np.uint8)
    r2 = rng.integers(0, 4, n).astype(np.uint8)
    rand = sw_score(r1, r2, DNA_DEFAULT)
    print(f"\nunrelated random pair of the same size: score={rand.score}, "
          f"E-value={stats.evalue(rand.score, m, n):.2f} (chance-level, as expected)")


if __name__ == "__main__":
    main()
