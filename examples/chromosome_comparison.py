#!/usr/bin/env python3
"""Full chromosome-comparison pipeline: score, start point, alignment.

Mirrors the paper's end-to-end flow on a scaled chr21 homolog pair:

1. stage 1 distributed over the multi-GPU chain (exact score + end point),
2. stage 2 anchored reverse pass (start point, early-terminated),
3. stage 2b crossing points on the saved special rows,
4. stage 3 Myers-Miller linear-space alignment, validated by re-scoring.

Run:  python examples/chromosome_comparison.py
"""

from repro import ChainConfig, align_multi_gpu
from repro.device import ENV1_HETEROGENEOUS
from repro.seq import DNA_DEFAULT
from repro.sw import find_crossings, stage1_score, stage2_start, stage3_align
from repro.workloads import get_pair, synthesize_pair


def main() -> None:
    pair = get_pair("chr21")
    human, chimp = synthesize_pair(pair, scale=1e-4, seed=7)
    print(f"{pair.name}: {human.size:,} bp vs {chimp.size:,} bp (scaled stand-in)\n")

    # Stage 1 on the simulated multi-GPU chain — the distributed part.
    chain = align_multi_gpu(human, chimp, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                            config=ChainConfig(block_rows=256))
    print(f"[stage 1] score={chain.score} end=({chain.best.row},{chain.best.col}) "
          f"{chain.gcups:.1f} GCUPS virtual")

    # Host-side stage 1 re-run to collect special rows for the traceback
    # stages (the real system spills these to disk during stage 1).
    s1 = stage1_score(human, chimp, DNA_DEFAULT, special_interval=512)
    assert s1.score == chain.score

    si, sj = stage2_start(human, chimp, DNA_DEFAULT, s1.score, s1.end_i, s1.end_j)
    print(f"[stage 2] alignment starts at ({si},{sj})")

    crossings = find_crossings(human, chimp, DNA_DEFAULT, s1, si, sj)
    print(f"[stage 2b] optimal path crossings on {len(crossings)} special rows "
          f"(first 3: {[(c.row, c.col) for c in crossings[:3]]})")

    aln = stage3_align(human, chimp, DNA_DEFAULT, s1.score,
                       (si, sj), (s1.end_i, s1.end_j))
    aln.validate(human, chimp, DNA_DEFAULT)
    print(f"[stage 3] alignment length={aln.length} columns, "
          f"identity={aln.identity(human, chimp):.1%}, CIGAR head: {aln.cigar()[:60]}...")
    print()
    print(aln.pretty(human, chimp, width=80, max_lines=4))


if __name__ == "__main__":
    main()
