#!/usr/bin/env python3
"""Operating a long comparison: Gantt tracing and checkpoint/restart.

Demonstrates the two operational features a real megabase run needs:

* a **trace** of what every device did (rendered as an ASCII Gantt chart,
  with the compute/transfer overlap quantified), and
* **checkpointing**: stop after a row boundary, save the state to disk,
  reload it, and resume to the exact same score.

Run:  python examples/trace_and_checkpoint.py
"""

import os
import tempfile

from repro.device import ENV1_HETEROGENEOUS, Tracer, render_gantt
from repro.multigpu import (
    ChainConfig,
    MatrixWorkload,
    MultiGpuChain,
    load_checkpoint,
    save_checkpoint,
)
from repro.seq import DNA_DEFAULT
from repro.workloads import get_pair, synthesize_pair


def main() -> None:
    human, chimp = synthesize_pair(get_pair("chr20"), scale=8e-5, seed=1)
    chain = MultiGpuChain(ENV1_HETEROGENEOUS,
                          config=ChainConfig(block_rows=256, channel_capacity=4))
    workload = MatrixWorkload(human, chimp, DNA_DEFAULT)

    # --- traced, uninterrupted run ---------------------------------------
    tracer = Tracer()
    full = chain.run(workload, tracer=tracer)
    print(f"uninterrupted: score={full.score}  {full.gcups:.1f} GCUPS virtual\n")
    print(render_gantt(tracer, width=88, makespan=full.total_time_s))
    gpu0 = full.gpus[0].name
    d2h = tracer.total(gpu0, "d2h")
    hidden = tracer.overlap(gpu0, "compute", gpu0, "d2h")
    print(f"\n{gpu0}: {hidden / d2h:.1%} of its border D2H time was hidden "
          f"behind its own compute")

    # --- checkpointed run --------------------------------------------------
    half = human.size // 2
    seg1 = chain.run(workload, stop_row=half)
    path = os.path.join(tempfile.gettempdir(), "mgsw-demo-checkpoint.npz")
    save_checkpoint(path, seg1.checkpoint)
    print(f"\ncheckpoint at row {seg1.checkpoint.row} "
          f"saved to {path} ({os.path.getsize(path):,} bytes)")

    resumed = chain.run(workload, resume=load_checkpoint(path))
    os.unlink(path)
    print(f"resumed: score={resumed.score} (matches: {resumed.score == full.score}), "
          f"cumulative virtual time {resumed.total_time_s * 1e3:.2f} ms "
          f"vs {full.total_time_s * 1e3:.2f} ms uninterrupted "
          f"(+{(resumed.total_time_s / full.total_time_s - 1):.1%} refill cost)")


if __name__ == "__main__":
    main()
