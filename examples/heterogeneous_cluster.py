#!/usr/bin/env python3
"""Planning a heterogeneous GPU mix for megabase comparison.

Given a box of mismatched GPUs, how should the matrix be split, and what
does each choice cost?  Sweeps partition strategies on a custom four-device
mix at paper scale (timing mode — no cells computed) and prints the
utilisation story, then shows what the analytic model predicts for an
upgrade (swapping the slowest card).

Run:  python examples/heterogeneous_cluster.py
"""

from repro.device import GTX_560_TI, GTX_580, GTX_680, TESLA_K20
from repro.multigpu import (
    ChainConfig,
    explicit_partition,
    imbalance,
    proportional_partition,
    predict_chain,
    time_multi_gpu,
)
from repro.perf import format_table, humanize_time
from repro.workloads import get_pair

PAIR = get_pair("chr19")
CFG = ChainConfig(block_rows=8192, channel_capacity=8)


def report(label, devices, partition=None):
    res = time_multi_gpu(PAIR.human_len, PAIR.chimp_len, devices,
                         config=CFG, partition=partition)
    worst_wait = max(bd["wait"] + bd["idle"] for bd in res.breakdown())
    return res, [label, f"{res.gcups:.2f}", humanize_time(res.total_time_s),
                 f"{worst_wait:.1%}"]


def main() -> None:
    devices = (GTX_560_TI, GTX_580, GTX_680, TESLA_K20)
    print(f"device mix: {', '.join(d.name for d in devices)}")
    print(f"aggregate peak: {sum(d.gcups for d in devices):.1f} GCUPS")
    print(f"workload: {PAIR.name} at paper scale "
          f"({PAIR.human_len:,} x {PAIR.chimp_len:,})\n")

    n = PAIR.chimp_len
    k = len(devices)
    eq = explicit_partition(n, [n // k] * (k - 1) + [n - (k - 1) * (n // k)])

    rows = []
    _, row = report("proportional (the paper's)", devices)
    rows.append(row)
    _, row = report("equal slabs", devices, partition=eq)
    rows.append(row)
    print(format_table(["partition", "GCUPS", "chr19 time", "worst wait+idle"], rows))

    prop = proportional_partition(n, [d.gcups for d in devices])
    print(f"\nproportional slab widths: {[s.cols for s in prop]}")
    print(f"equal-split imbalance vs weights: {imbalance(eq, [d.gcups for d in devices]):.2f}")

    # What-if: replace the GTX 560 Ti with a second K20 (model only, instant).
    upgraded = (TESLA_K20, GTX_580, GTX_680, TESLA_K20)
    slabs = proportional_partition(n, [d.gcups for d in upgraded])
    pred = predict_chain(upgraded, slabs, PAIR.human_len, CFG)
    print(f"\nupgrade what-if (560 Ti -> K20, analytic model): "
          f"{pred.gcups(PAIR.cells):.2f} GCUPS, "
          f"{humanize_time(pred.total_s)} total, bottleneck: {pred.bottleneck}")


if __name__ == "__main__":
    main()
