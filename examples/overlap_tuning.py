#!/usr/bin/env python3
"""Tuning the circular buffer: when is communication actually hidden?

Uses the analytic overlap model to find, for a given device pair and block
height, the minimum slab width at which border transfers hide behind
compute — then verifies the prediction with the event simulator on both
sides of the crossover and sweeps the buffer capacity.

Run:  python examples/overlap_tuning.py
"""

from repro.device import DeviceSpec
from repro.multigpu import (
    ChainConfig,
    block_row_time,
    channel_segment_cost,
    min_overlap_width,
    time_multi_gpu,
)
from repro.perf import format_table


def main() -> None:
    # A device with a deliberately slow link so the effect is visible.
    dev = DeviceSpec("DemoGPU", gcups=40.0, pcie_gbps=0.01,
                     pcie_latency_s=100e-6, saturation_cols=0)
    block_rows = 2048

    x = channel_segment_cost(dev, dev, block_rows, pipelined=True)
    w_min = min_overlap_width(dev, dev, block_rows)
    print(f"per-segment channel cost : {x * 1e3:.2f} ms")
    print(f"block-row compute at w_min: "
          f"{block_row_time(dev, w_min, block_rows) * 1e3:.2f} ms")
    print(f"minimum slab width for full overlap: {w_min:,} columns\n")

    rows = []
    for factor, label in ((0.25, "starved"), (1.0, "crossover"), (4.0, "hidden")):
        cols = 2 * int(w_min * factor)
        res = time_multi_gpu(1_000_000, cols, (dev, dev),
                             config=ChainConfig(block_rows=block_rows,
                                                channel_capacity=8))
        eff = res.gcups / (2 * dev.gcups)
        rows.append([label, f"{cols // 2:,}", f"{res.gcups:.2f}", f"{eff:.1%}"])
    print(format_table(["regime", "slab cols", "GCUPS", "efficiency"], rows))

    print("\nbuffer capacity sweep at the crossover width:")
    cols = 2 * w_min
    rows = []
    for cap in (1, 2, 4, 16):
        res = time_multi_gpu(1_000_000, cols, (dev, dev),
                             config=ChainConfig(block_rows=block_rows,
                                                channel_capacity=cap,
                                                device_slots=1 if cap == 1 else 2))
        rows.append([str(cap), f"{res.gcups:.2f}",
                     f"{res.channels[0].producer_blocked_s:.2f}s"])
    print(format_table(["slots", "GCUPS", "producer blocked"], rows))


if __name__ == "__main__":
    main()
