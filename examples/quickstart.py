#!/usr/bin/env python3
"""Quickstart: exact multi-GPU Smith-Waterman in a dozen lines.

Generates a small synthetic human/chimp homolog pair, compares it on the
paper's heterogeneous 3-GPU environment (simulated), and prints the exact
score with the virtual-clock GCUPS figure.

Run:  python examples/quickstart.py
"""

from repro import ChainConfig, align_multi_gpu
from repro.device import ENV1_HETEROGENEOUS
from repro.perf import humanize_cells, humanize_time
from repro.seq import DNA_DEFAULT
from repro.workloads import get_pair, synthesize_pair


def main() -> None:
    # A chr22 stand-in at 1/5000 scale (~7 kbp per side, real cells).
    human, chimp = synthesize_pair(get_pair("chr22"), scale=2e-4, seed=0)
    print(f"comparing {human.size:,} bp vs {chimp.size:,} bp "
          f"({humanize_cells(human.size * chimp.size)})")

    result = align_multi_gpu(
        human, chimp, DNA_DEFAULT, ENV1_HETEROGENEOUS,
        config=ChainConfig(block_rows=256, channel_capacity=4),
    )

    print(f"optimal local score : {result.score}")
    print(f"alignment ends at   : a[{result.best.row}], b[{result.best.col}]")
    print(f"virtual time        : {humanize_time(result.total_time_s)}")
    print(f"throughput          : {result.gcups:.2f} GCUPS (virtual clock)")
    print()
    print("per-device activity:")
    for gpu, bd in zip(result.gpus, result.breakdown()):
        print(f"  {gpu.name:24s} slab={gpu.slab.cols:6d} cols  "
              f"compute={bd['compute']:6.1%}  wait={bd['wait']:6.1%}")


if __name__ == "__main__":
    main()
